package netem

import (
	"fmt"
	"math/rand"
	"time"

	"netneutral/internal/obs"
)

// The parallel engine partitions a Simulator into shards: each shard
// owns an event queue, a packet freelist, a seeded PRNG, and the nodes
// assigned to it. Execution proceeds in conservative epochs bounded by
// the minimum cross-shard link propagation delay (the lookahead): within
// an epoch every shard runs independently — it may only touch its own
// state — and packets crossing a shard boundary are staged in per-
// destination outboxes that the receiving shard merges deterministically
// (ordered by time, then source shard, then source sequence) at the
// epoch barrier. Because shard assignment is a property of the topology
// and the merge order is a pure function of event content, a seeded run
// is bit-identical at any worker count, including 1 (see parallel.go).

// shard is one partition's worker state. All fields are owned by the
// shard: during an epoch only the goroutine executing the shard touches
// them (outboxes are read by their destination shard, but only in the
// merge phase, when sources are quiescent).
type shard struct {
	sim *Simulator
	id  int

	now    time.Time
	seq    uint64
	events eventQueue
	pool   packetPool
	rng    *rand.Rand

	// outbox[d] stages events bound for shard d, in emission order.
	outbox [][]remoteEvent
	// mergeBuf is scratch for the deterministic incoming merge.
	mergeBuf []remoteEvent

	// Write stripes of the simulator's metric registry (see metrics.go):
	// per-shard, cache-line padded, plain increments — the shard is the
	// single writer, merged only at read time.
	mEvents    *obs.Counter
	mDelivered *obs.Counter
	mForwarded *obs.Counter
	mDropped   *obs.Counter
	mLinkTx    *obs.Counter
	mLinkQDrop *obs.Counter
	gHeap      *obs.Gauge
	gPoolFree  *obs.Gauge
	// flight is the shard's flight-recorder stripe, nil unless attached.
	flight *obs.FlightStripe

	// Trace events are buffered per shard during a parallel run and
	// merged into global (time, shard, seq) order at each barrier; the
	// packet bytes are copied into traceBytes so the view outlives the
	// pooled buffer.
	traceBuf   []traceRec
	traceBytes []byte
	traceSeq   uint64
	// journeySeq numbers the packet journeys this shard originates; with
	// the shard id it forms the journey id — a pure function of the
	// topology and seed, never of the worker count.
	journeySeq uint64
}

// remoteEvent is a cross-shard event staged in an outbox, tagged with
// its origin for the deterministic merge order.
type remoteEvent struct {
	ev  event // at = arrival time, seq = source-shard sequence
	src int32
}

// traceRec is one buffered trace emission.
type traceRec struct {
	at      time.Time
	seq     uint64
	node    *Node
	kind    TraceKind
	off     int // into traceBytes
	n       int
	flow    uint64
	journey uint64
	attr    HopAttr
}

// splitmix64 is the SplitMix64 mixing function: the standard way to
// derive independent per-shard seeds from one root seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// shardSeed derives shard id's RNG seed from the root seed. Shard 0
// keeps the root seed itself so single-shard simulations replay
// identically to the pre-shard engine; every other shard gets an
// independent splitmix-derived stream.
//
// The root is mixed once before stepping the SplitMix64 stream. Feeding
// root+id*golden straight into the mixer made distinct (root, id) pairs
// land on the same stream position — shardSeed(r, 2) == shardSeed(r+g, 1)
// for the golden-ratio increment g — so two experiments whose seeds
// differed by g shared shard RNG streams. Mixing the root first makes the
// stream origin a pseudo-random function of the root, and stream
// positions of related roots unrelated.
func shardSeed(root int64, id int) int64 {
	if id == 0 {
		return root
	}
	return int64(splitmix64(splitmix64(uint64(root)) + uint64(id)*0x9E3779B97F4A7C15))
}

func newShard(s *Simulator, id int, now time.Time) *shard {
	sh := &shard{sim: s, id: id, now: now,
		rng: rand.New(rand.NewSource(shardSeed(s.seed, id)))}
	sh.pool.shard = id
	sh.pool.debug = s.poolDebug
	s.met.attachShard(sh)
	if s.flight != nil {
		sh.flight = s.flight.Stripe(id)
	}
	return sh
}

// SetShardCount declares n shards (n >= 1; the count only grows).
// Topology builders call it before assigning nodes with Node.SetShard.
// Each shard's PRNG derives from the simulator seed via splitmix, so
// shard RNG streams are a function of (seed, shard id) alone — never of
// the worker count the simulation later runs with.
func (s *Simulator) SetShardCount(n int) {
	for len(s.shards) < n {
		s.shards = append(s.shards, newShard(s, len(s.shards), s.Now()))
	}
	s.planDirty = true
}

// ShardCount reports the declared number of shards.
func (s *Simulator) ShardCount() int { return len(s.shards) }

// SetWorkers sets how many OS threads execute the shards during Run
// (default 1). Workers only parallelize execution: with a fixed seed,
// results are bit-identical at every worker count. Values above the
// shard count are clamped at run time.
func (s *Simulator) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	s.workers = w
}

// Workers reports the configured execution parallelism.
func (s *Simulator) Workers() int { return s.workers }

// SetShard assigns the node to a shard declared with SetShardCount.
// Assign shards while building the topology, before any traffic is
// scheduled: events already queued on the old shard are not migrated.
func (n *Node) SetShard(id int) {
	s := n.sim
	if id < 0 || id >= len(s.shards) {
		panic(fmt.Sprintf("netem: node %q assigned to shard %d of %d; call SetShardCount first",
			n.Name, id, len(s.shards)))
	}
	n.sh = s.shards[id]
	s.planDirty = true
}

// ShardID reports which shard the node belongs to.
func (n *Node) ShardID() int { return n.sh.id }

// Context is the scheduling surface traffic generators and probers run
// on. Both *Simulator and *Node implement it: single-threaded
// simulations pass the simulator; sharded simulations must anchor each
// source to a node so its callbacks run on (and its jitter draws from)
// that node's shard.
type Context interface {
	// Now is the current virtual time of the scheduling domain.
	Now() time.Time
	// NowNanos is Now as integer nanoseconds (hot-path timestamp form).
	NowNanos() int64
	// Schedule runs fn after d of virtual time on the domain's queue.
	Schedule(d time.Duration, fn func())
	// Rand is the domain's seeded PRNG.
	Rand() *rand.Rand
}

// Now returns the node's shard-local virtual time: exact inside the
// node's own callbacks, which is what source scheduling needs.
func (n *Node) Now() time.Time { return n.sh.now }

// NowNanos returns the node's shard-local clock as nanoseconds.
func (n *Node) NowNanos() int64 { return n.sh.now.UnixNano() }

// Schedule runs fn after d of virtual time on the node's shard. Source
// generators anchored to a node schedule here so their emissions execute
// on the shard that owns the node — the requirement for parallel runs.
func (n *Node) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.sh.schedule(n.sh.now.Add(d), event{kind: evFunc, fn: fn})
}

// Rand returns the PRNG of the node's shard. Deterministic parallel
// simulations draw node-local jitter from here: the stream is a function
// of (simulator seed, shard id) and is consumed only by the shard's own
// event execution.
func (n *Node) Rand() *rand.Rand { return n.sh.rng }

// NewPacket checks a buffer out of the node's shard-local pool and
// copies b into it — the one copy of a packet's journey. Senders that
// run inside shard callbacks must use this (or Node.Send, which does)
// rather than Simulator.NewPacket, which draws from shard 0.
func (n *Node) NewPacket(b []byte) *Packet {
	p := n.sh.pool.get(len(b))
	copy(p.Pkt, b)
	return p
}

// schedule enqueues ev at absolute time at (clamped to the shard's now).
func (sh *shard) schedule(at time.Time, ev event) {
	if at.Before(sh.now) {
		at = sh.now
	}
	sh.seq++
	ev.at = at
	ev.seq = sh.seq
	sh.events.push(ev)
}

// sendRemote stages ev for another shard at absolute time at. The event
// keeps the source shard's sequence number; the destination re-sequences
// it during its deterministic merge.
func (sh *shard) sendRemote(dst *shard, at time.Time, ev event) {
	sh.seq++
	ev.at = at
	ev.seq = sh.seq
	for len(sh.outbox) <= dst.id {
		sh.outbox = append(sh.outbox, nil)
	}
	sh.outbox[dst.id] = append(sh.outbox[dst.id], remoteEvent{ev: ev, src: int32(sh.id)})
}

// stampJourney assigns the packet its journey id at origination.
func (sh *shard) stampJourney(p *Packet) {
	sh.journeySeq++
	p.journey = uint64(sh.id)<<48 | sh.journeySeq
}

// emit counts and traces one packet event on the shard. It snapshots the
// packet's attribution accumulators — the delay components that elapsed
// since the journey's previous event — and resets them, so components
// are per-hop deltas whose journey sum equals the end-to-end delay
// exactly.
func (sh *shard) emit(kind TraceKind, node *Node, p *Packet) {
	switch {
	case kind == TraceDeliver:
		sh.mDelivered.Inc()
	case kind == TraceForward:
		sh.mForwarded.Inc()
	case kind >= TraceDropQueue:
		sh.mDropped.Inc()
	}
	attr := HopAttr{
		Queue:     time.Duration(p.attrQueue),
		Serialize: time.Duration(p.attrSer),
		Propagate: time.Duration(p.attrProp),
		Policy:    time.Duration(p.attrPolicy),
		Proc:      time.Duration(p.attrProc),
		Cause:     p.cause,
		Class:     p.class,
	}
	p.attrQueue, p.attrSer, p.attrProp, p.attrPolicy, p.attrProc = 0, 0, 0, 0, 0
	p.cause, p.class = 0, 0
	// Flight recorder: deterministic head sampling on the shard's own
	// event sequence; the flow hash is only computed when the event is
	// sampled or per-flow selection (tags, flow-keyed sampling) could
	// match it, and it is cached on the packet for the journey's
	// remaining hops.
	if st := sh.flight; st != nil {
		take := st.Sample()
		if take || st.FlowAware() {
			flow := p.flowID()
			if take || st.WantFlow(flow) {
				st.Record(obs.TraceRec{
					TimeNanos: sh.now.UnixNano(), Flow: flow, Journey: p.journey,
					Node: int32(node.id), Size: int32(len(p.Pkt)), Kind: uint8(kind),
					QueueNanos: int64(attr.Queue), SerializeNanos: int64(attr.Serialize),
					PropagateNanos: int64(attr.Propagate), PolicyNanos: int64(attr.Policy),
					ProcNanos: int64(attr.Proc), Cause: uint8(attr.Cause), Class: attr.Class,
				})
			}
		}
	}
	s := sh.sim
	if len(s.traces) == 0 {
		return
	}
	if !s.running {
		// Single-shard runs and setup-time emissions: hooks fire live,
		// exactly as the serial engine always has.
		ev := TraceEvent{Kind: kind, Time: sh.now, Node: node, Pkt: p.Pkt,
			Flow: p.flowID(), Journey: p.journey, Attr: attr}
		for _, h := range s.traces {
			h(ev)
		}
		return
	}
	// Parallel run: buffer (bytes copied — the pooled buffer is recycled
	// before the barrier) and fire in merged order at the epoch barrier.
	off := len(sh.traceBytes)
	sh.traceBytes = append(sh.traceBytes, p.Pkt...)
	sh.traceSeq++
	sh.traceBuf = append(sh.traceBuf, traceRec{
		at: sh.now, seq: sh.traceSeq, node: node, kind: kind, off: off, n: len(p.Pkt),
		flow: p.flowID(), journey: p.journey, attr: attr})
}
