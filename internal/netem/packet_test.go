package netem

import (
	"bytes"
	"testing"
	"time"
)

// TestPacketPoolReuse: forwarding the same traffic twice must reuse the
// pooled buffers rather than allocating fresh ones.
func TestPacketPoolReuse(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	b := s.MustAddNode("b", "", addr("10.0.0.2"))
	s.Connect(a, b, LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()
	b.SetHandler(func(time.Time, []byte) {})
	pkt := mkUDP(t, addr("10.0.0.1"), addr("10.0.0.2"), make([]byte, 64))

	for i := 0; i < 50; i++ {
		if err := a.Send(pkt); err != nil {
			t.Fatal(err)
		}
		s.Run()
	}
	allocated, gets := s.PoolStats()
	if gets != 50 {
		t.Fatalf("gets = %d, want 50", gets)
	}
	if allocated > 2 {
		t.Errorf("allocated %d buffers for sequential sends, want <= 2 (pool not reusing)", allocated)
	}
}

// TestPacketPoolPoisonsReleasedBuffers is the pool-lifetime contract
// test: a handler (or transit hook) that retains its packet view past the
// call must observe poisoned bytes in debug mode, not silently alias a
// recycled buffer. Run under -race like the rest of the suite; the event
// loop is single-threaded so the detector also proves no hidden sharing.
func TestPacketPoolPoisonsReleasedBuffers(t *testing.T) {
	s := NewSimulator(simStart, 1)
	s.SetPoolDebug(true)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	r := s.MustAddNode("r", "evil", addr("10.0.0.254"))
	b := s.MustAddNode("b", "", addr("10.0.1.1"))
	s.Connect(a, r, LinkConfig{Delay: time.Millisecond})
	s.Connect(r, b, LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()

	var retainedByHook, retainedByHandler []byte
	r.AddTransitHook(func(_ time.Time, _ *Node, pkt []byte) Verdict {
		retainedByHook = pkt // BUG under test: retained past the call
		return Deliver
	})
	b.SetHandler(func(_ time.Time, pkt []byte) {
		retainedByHandler = pkt // BUG under test: retained past the call
	})

	payload := bytes.Repeat([]byte{0xAB}, 64)
	if err := a.Send(mkUDP(t, addr("10.0.0.1"), addr("10.0.1.1"), payload)); err != nil {
		t.Fatal(err)
	}
	s.Run()

	for name, view := range map[string][]byte{
		"transit hook": retainedByHook, "handler": retainedByHandler,
	} {
		if view == nil {
			t.Fatalf("%s never saw the packet", name)
		}
		for i, c := range view {
			if c != poisonByte {
				t.Fatalf("%s retained a live view: byte %d = %#x, want %#x poison",
					name, i, c, poisonByte)
			}
		}
	}
}

// TestPacketRetainKeepsBufferAlive: the sanctioned way to hold a packet
// past the callback.
func TestPacketRetainKeepsBufferAlive(t *testing.T) {
	s := NewSimulator(simStart, 1)
	s.SetPoolDebug(true)
	payload := []byte{1, 2, 3, 4}
	p := s.NewPacket(payload)
	p.Retain()
	p.Release() // first owner done; retained reference keeps it alive
	if !bytes.Equal(p.Pkt, payload) {
		t.Fatalf("retained packet poisoned early: %v", p.Pkt)
	}
	p.Release()
	if p.Pkt != nil {
		t.Error("fully released packet should drop its view")
	}
}

func TestPacketDoubleReleasePanics(t *testing.T) {
	s := NewSimulator(simStart, 1)
	p := s.NewPacket([]byte{1})
	p.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	p.Release()
}

// TestPolicyDelayNoCopy: a delayed packet resumes with the same pooled
// buffer (the seed engine cloned here).
func TestPolicyDelayNoCopy(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	r := s.MustAddNode("r", "evil", addr("10.0.0.254"))
	b := s.MustAddNode("b", "", addr("10.0.1.1"))
	s.Connect(a, r, LinkConfig{Delay: time.Millisecond})
	s.Connect(r, b, LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()
	r.AddTransitHook(func(time.Time, *Node, []byte) Verdict {
		return Verdict{Delay: 50 * time.Millisecond}
	})
	delivered := false
	b.SetHandler(func(time.Time, []byte) { delivered = true })
	_ = a.Send(mkUDP(t, addr("10.0.0.1"), addr("10.0.1.1"), make([]byte, 32)))
	s.Run()
	if !delivered {
		t.Fatal("delayed packet lost")
	}
	if allocated, _ := s.PoolStats(); allocated > 1 {
		t.Errorf("delay path allocated %d buffers, want 1 (no clone)", allocated)
	}
}

// TestSetQueueTransfersQueuedPackets: swapping the queue discipline
// mid-simulation must carry waiting packets over (or drop-and-release
// what the new discipline refuses) — never leak pooled buffers.
func TestSetQueueTransfersQueuedPackets(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	b := s.MustAddNode("b", "", addr("10.0.0.2"))
	// Slow link so a burst queues up behind the first transmission.
	l := s.Connect(a, b, LinkConfig{Delay: time.Millisecond, RateBps: 1e4, QueueLen: 8})
	s.BuildRoutes()
	n := 0
	b.SetHandler(func(time.Time, []byte) { n++ })
	pkt := mkUDP(t, addr("10.0.0.1"), addr("10.0.0.2"), make([]byte, 100))
	for i := 0; i < 6; i++ {
		_ = a.Send(pkt)
	}
	if got := l.QueueLen(a); got != 5 {
		t.Fatalf("queued = %d, want 5", got)
	}
	// Swap to a smaller queue: 2 transfer, 3 are dropped and released.
	small := NewFIFOQueue(2)
	if err := l.SetQueue(a, small); err != nil {
		t.Fatal(err)
	}
	if got := l.QueueLen(a); got != 2 {
		t.Fatalf("after swap queued = %d, want 2", got)
	}
	// Idempotent re-install of the same queue must be a no-op, not a
	// self-transfer livelock.
	if err := l.SetQueue(a, small); err != nil {
		t.Fatal(err)
	}
	if got := l.QueueLen(a); got != 2 {
		t.Fatalf("after idempotent swap queued = %d, want 2", got)
	}
	s.Run()
	if n != 3 {
		t.Errorf("delivered %d, want 3 (1 in flight + 2 transferred)", n)
	}
	if _, dropped := l.Stats(a); dropped != 3 {
		t.Errorf("dropped = %d, want 3", dropped)
	}
	// No leak: every checked-out buffer came back to the pool.
	s.SetPoolDebug(true)
	allocated, gets := s.PoolStats()
	if gets != 6 || allocated > 6 {
		t.Errorf("pool stats allocated=%d gets=%d", allocated, gets)
	}
	free := len(s.shards[0].pool.free)
	if free != int(allocated) {
		t.Errorf("pool free=%d, want %d (leaked %d buffers)", free, allocated, int(allocated)-free)
	}
}
