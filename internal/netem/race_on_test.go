//go:build race

package netem

// raceEnabled reports whether the race detector is active. Wall-clock
// build-time gates (the million-host backbone) are skipped under -race:
// instrumentation multiplies allocation-heavy build costs by a factor
// that says nothing about the uninstrumented engine.
const raceEnabled = true
