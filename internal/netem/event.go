package netem

import "time"

// The event loop stores typed event values in a growable slice-backed
// binary heap. The hot-path events (link departure, link arrival,
// policy-delayed redispatch) carry their operands in struct fields, so a
// forwarded packet costs no closure or heap allocation per hop; only the
// public Schedule/ScheduleAt API still wraps arbitrary callbacks.

type eventKind uint8

const (
	evFunc    eventKind = iota // run fn()
	evArrive                   // pkt arrives at node (link propagation done)
	evDepart                   // dir finished serializing its current packet
	evDelayed                  // policy-delayed pkt resumes dispatch at node
	evProc                     // processing-delayed pkt originates at node
)

type event struct {
	at   time.Time
	seq  uint64
	kind eventKind
	node *Node
	pkt  *Packet
	dir  *linkDir
	fn   func()
}

// eventQueue is a binary min-heap ordered by (at, seq): earliest first,
// FIFO among simultaneous events. Values live inline in the slice — no
// per-event pointer, no interface boxing.
type eventQueue struct {
	h []event
}

func (q *eventQueue) len() int { return len(q.h) }

func (q *eventQueue) less(i, j int) bool {
	if !q.h[i].at.Equal(q.h[j].at) {
		return q.h[i].at.Before(q.h[j].at)
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *eventQueue) push(ev event) {
	q.h = append(q.h, ev)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = event{} // drop pkt/fn references for the GC
	q.h = q.h[:n]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}

// dispatchEvent runs one popped event. Shard-local: every operand (node,
// link direction) belongs to the shard that queued the event.
func (sh *shard) dispatchEvent(ev *event) {
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evArrive:
		_ = ev.node.dispatch(ev.pkt, false)
	case evDepart:
		ev.dir.depart(ev.pkt)
	case evDelayed:
		_ = ev.node.dispatchAfterPolicy(ev.pkt, false)
	case evProc:
		_ = ev.node.dispatch(ev.pkt, true)
	}
}
