package netem

import (
	"fmt"
	"testing"
	"time"

	"netneutral/internal/obs"
)

// runTraceWorld drives a sharded fan-out shaped so every attribution
// component is exercised — rate-limited queued links (queue wait and
// serialization), propagation delays, and a cause-tagged policing hook
// on transit — with a flow-complete flight recorder (SampleFlows 1, no
// eviction), so every journey is recorded end to end.
func runTraceWorld(t testing.TB, workers int) []obs.TraceRec {
	t.Helper()
	sim := NewSimulator(simStart, 21)
	f, err := BuildFanout(sim, FanoutSpec{
		Hosts: 64, HostsPerEdge: 16, Outside: 1,
		ShardSubtrees: true,
		HostLink:      LinkConfig{Delay: 800 * time.Microsecond},
		EdgeLink:      LinkConfig{Delay: 1200 * time.Microsecond, RateBps: 20e6, QueueLen: 128},
		TransitLink:   LinkConfig{Delay: 1500 * time.Microsecond, RateBps: 40e6, QueueLen: 128},
		OutsideLink:   LinkConfig{Delay: 900 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetWorkers(workers)
	f.Transit.AddTransitHook(func(time.Time, *Node, []byte) Verdict {
		return Verdict{Delay: 750 * time.Microsecond, Cause: CauseClassDelay, Class: 2}
	})
	fr := obs.NewFlightRecorder(obs.FlightConfig{
		SampleEvery: 64, RingSize: 1 << 14, SampleFlows: 1,
	})
	sim.AttachFlightRecorder(fr)
	// One same-instant burst to every host: the shared links saturate, so
	// later packets accrue real queue wait on top of serialization.
	for i := 0; i < 64; i++ {
		if err := f.Outside[0].Send(mkUDP(t, f.OutsideAddr(0), f.HostAddr(i), []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if ev := fr.Evicted(); ev != 0 {
		t.Fatalf("ring evicted %d events; grow RingSize so journeys stay intact", ev)
	}
	return fr.Events()
}

// TestTraceAttributionSumInvariant is the tentpole invariant at the
// engine level: on a fully recorded journey, the per-hop attributed
// components (queue wait, serialization, propagation, policy delay,
// processing) sum exactly — not approximately — to the end-to-end
// virtual delay, at workers 1 and 4 alike. It also requires each
// physical component and the cause-tagged policy delay to actually
// appear, so the invariant cannot pass on a degenerate world.
func TestTraceAttributionSumInvariant(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			evs := runTraceWorld(t, workers)
			var journeys int
			var queue, ser, prop, policy int64
			for _, sp := range obs.AssembleSpans(evs) {
				for i := range sp.Journeys {
					j := &sp.Journeys[i]
					if !j.Complete() {
						t.Fatalf("flow %016x journey %d recorded incompletely despite lossless tracing", sp.Flow, j.ID)
					}
					if sum, e2e := j.AttrSumNanos(), j.EndToEndNanos(); sum != e2e {
						t.Fatalf("flow %016x journey %d: components sum to %dns, end-to-end delay %dns",
							sp.Flow, j.ID, sum, e2e)
					}
					journeys++
					for _, h := range j.Hops {
						queue += h.QueueNanos
						ser += h.SerializeNanos
						prop += h.PropagateNanos
						policy += h.PolicyNanos
						if h.PolicyNanos > 0 && (h.Cause != uint8(CauseClassDelay) || h.Class != 2) {
							t.Fatalf("policy delay attributed to cause=%d class=%d, want class-delay/2", h.Cause, h.Class)
						}
					}
				}
			}
			if journeys != 64 {
				t.Fatalf("assembled %d journeys, want 64", journeys)
			}
			if queue == 0 || ser == 0 || prop == 0 || policy == 0 {
				t.Fatalf("degenerate attribution: queue=%d ser=%d prop=%d policy=%d (every component must appear)",
					queue, ser, prop, policy)
			}
		})
	}
}

// TestTraceWorkerIdentity pins that flow-keyed sampling is a pure
// function of flow identity: the merged recorded-event sequence —
// attribution components included — is bit-identical at workers 1
// and 4.
func TestTraceWorkerIdentity(t *testing.T) {
	serial := runTraceWorld(t, 1)
	par := runTraceWorld(t, 4)
	if len(serial) != len(par) {
		t.Fatalf("recorded %d events at 1 worker, %d at 4", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("event %d diverged:\n workers=1: %+v\n workers=4: %+v", i, serial[i], par[i])
		}
	}
}

// TestSendPacketProcAttribution pins the processing component: a packet
// originated with SendPacketProc carries the endpoint's processing time
// into its journey's Proc attribution, and the journey still sums
// exactly to its end-to-end delay (which includes the proc time, since
// the send event is emitted when processing begins).
func TestSendPacketProcAttribution(t *testing.T) {
	const proc = 300 * time.Microsecond
	sim := NewSimulator(simStart, 1)
	a := sim.MustAddNode("a", "", addr("10.0.0.1"))
	c := sim.MustAddNode("c", "", addr("10.0.1.1"))
	sim.Connect(a, c, LinkConfig{Delay: time.Millisecond})
	sim.BuildRoutes()
	fr := obs.NewFlightRecorder(obs.FlightConfig{SampleEvery: 1, RingSize: 64})
	sim.AttachFlightRecorder(fr)

	pkt := mkUDP(t, addr("10.0.0.1"), addr("10.0.1.1"), []byte{0xAB})
	if err := a.SendPacketProc(a.NewPacket(pkt), proc); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	spans := obs.AssembleSpans(fr.Events())
	if len(spans) != 1 || len(spans[0].Journeys) != 1 {
		t.Fatalf("assembled %d spans, want 1 flow with 1 journey", len(spans))
	}
	j := &spans[0].Journeys[0]
	if !j.Delivered() {
		t.Fatalf("journey did not end in delivery: %+v", j.Hops)
	}
	var got int64
	for _, h := range j.Hops {
		got += h.ProcNanos
	}
	if got != int64(proc) {
		t.Fatalf("journey Proc total = %dns, want %dns", got, int64(proc))
	}
	if sum, e2e := j.AttrSumNanos(), j.EndToEndNanos(); sum != e2e {
		t.Fatalf("components sum to %dns, end-to-end delay %dns", sum, e2e)
	}
	if want := int64(proc + time.Millisecond); j.EndToEndNanos() != want {
		t.Fatalf("end-to-end = %dns, want proc+propagation = %dns", j.EndToEndNanos(), want)
	}
}

// TestObsKindCauseMirror pins the numbering contract between the two
// packages: obs cannot import netem, so it mirrors the trace-kind and
// policy-cause constants — any renumbering on either side must fail
// here, not silently mislabel exported spans.
func TestObsKindCauseMirror(t *testing.T) {
	kinds := map[TraceKind]uint8{
		TraceSend:        obs.KindSend,
		TraceForward:     obs.KindForward,
		TraceDeliver:     obs.KindDeliver,
		TraceDropQueue:   obs.KindDropQueue,
		TraceDropPolicy:  obs.KindDropPolicy,
		TraceDropNoRoute: obs.KindDropNoRoute,
		TraceDropTTL:     obs.KindDropTTL,
	}
	for k, want := range kinds {
		if uint8(k) != want {
			t.Errorf("netem.%v = %d, obs mirror says %d", k, uint8(k), want)
		}
		if obs.KindName(uint8(k)) != k.String() {
			t.Errorf("kind %d named %q by netem, %q by obs", uint8(k), k.String(), obs.KindName(uint8(k)))
		}
	}
	causes := []PolicyCause{
		CauseNone, CauseRule, CauseTokenBucket,
		CauseRandomDrop, CauseClassDelay, CauseQueueFull,
	}
	for _, c := range causes {
		if obs.CauseName(uint8(c)) != c.String() {
			t.Errorf("cause %d named %q by netem, %q by obs", uint8(c), c.String(), obs.CauseName(uint8(c)))
		}
	}
}
