package netem

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// Conservative parallel execution. The engine runs sharded simulations
// in epochs: at each barrier the coordinator finds the earliest pending
// event time `next` across all shards and opens the window
// [next, next+lookahead). Every shard independently executes its own
// events inside the window; any packet it sends toward another shard
// arrives at least `lookahead` later — the minimum propagation delay of
// all cross-shard links — so the arrival provably lands at or beyond
// the window's end and can be exchanged at the barrier instead of
// interrupting the receiver. Incoming events are merged in (time,
// source shard, source sequence) order and re-sequenced locally, a pure
// function of event content. Shards therefore evolve identically
// whether the per-epoch phases run on one worker or many: `-seed` replay
// is bit-identical at every worker count.

// noLookahead marks a plan with no cross-shard links: windows are
// unbounded and every shard drains independently.
const noLookahead = time.Duration(1<<63 - 1)

// refreshPlan recomputes the execution plan after a topology change:
// whether any node lives beyond shard 0, and the conservative lookahead
// (minimum cross-shard link propagation delay).
func (s *Simulator) refreshPlan() {
	if !s.planDirty {
		return
	}
	s.planDirty = false
	s.multi = false
	s.lookahead = noLookahead
	for _, n := range s.nodeList {
		if n.sh.id != 0 {
			s.multi = true
		}
		for _, l := range n.links {
			if n != l.a {
				continue // visit each link once
			}
			for _, d := range l.dirs {
				if d.from.sh == d.to.sh {
					continue
				}
				if d.cfg.Delay <= 0 {
					panic(fmt.Sprintf(
						"netem: link %s->%s crosses shards %d->%d with no propagation delay; conservative parallel execution needs Delay > 0 on every cross-shard link",
						d.from.Name, d.to.Name, d.from.sh.id, d.to.sh.id))
				}
				if d.cfg.Delay < s.lookahead {
					s.lookahead = d.cfg.Delay
				}
			}
		}
	}
	la := int64(s.lookahead)
	if s.lookahead == noLookahead {
		la = 0
	}
	s.met.lookahead.Set(la)
}

// runLimit is the engine behind Run/RunUntil: hasLimit bounds execution
// to events with at <= limit and then advances clocks to limit.
func (s *Simulator) runLimit(limit time.Time, hasLimit bool) {
	s.refreshPlan()
	if !s.multi {
		// Classic serial loop on shard 0: the pre-shard engine,
		// unchanged down to event ordering.
		sh := s.shards[0]
		for sh.events.len() > 0 {
			if hasLimit && sh.events.h[0].at.After(limit) {
				break
			}
			ev := sh.events.pop()
			sh.now = ev.at
			sh.mEvents.Inc()
			sh.dispatchEvent(&ev)
		}
		if hasLimit && sh.now.Before(limit) {
			sh.now = limit
		}
		// Keep the committed floor in sync so a later shard assignment
		// (flipping Now() to the committed clock) never rewinds time.
		if s.committed.Before(sh.now) {
			s.committed = sh.now
		}
		// Serial runs have no epoch barriers; the end of a Run/RunUntil
		// call is the quiescent point observers sample at.
		s.barrierTick(sh.now)
		return
	}
	s.runEpochs(limit, hasLimit)
}

// runEpochs is the sharded epoch loop.
func (s *Simulator) runEpochs(limit time.Time, hasLimit bool) {
	workers := s.workers
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	s.running = true
	s.parallelRun = workers > 1
	defer func() { s.running = false; s.parallelRun = false }()
	// Sparse epochs (drain tails, bursty idle periods) are cheaper to
	// run inline than to fan out: below this many pending events per
	// worker, goroutine spawn/join overhead dominates the work. The
	// choice is pure execution strategy — results are identical either
	// way — so the threshold cannot affect determinism.
	const minEventsPerWorker = 32
	for {
		next, pending, ok := s.nextEventTime()
		if !ok || (hasLimit && next.After(limit)) {
			break
		}
		epochStart := time.Now()
		if s.committed.Before(next) {
			s.committed = next
		}
		end := next.Add(s.lookahead)
		if s.lookahead == noLookahead || end.Before(next) { // overflow guard
			end = maxTime()
		}
		if hasLimit {
			// Include events at exactly `limit` (RunUntil is inclusive)
			// while keeping the window inside the lookahead bound.
			if cap := limit.Add(time.Nanosecond); end.After(cap) {
				end = cap
			}
		}
		if workers <= 1 || pending < minEventsPerWorker*workers {
			for _, sh := range s.shards {
				sh.runWindow(end)
			}
			for _, sh := range s.shards {
				sh.mergeIncoming()
			}
		} else {
			s.parallelPhase(workers, phaseRun, end)
			s.parallelPhase(workers, phaseMerge, time.Time{})
		}
		s.flushTraces()
		s.met.epochs.Inc()
		s.met.epochWall.ObserveDuration(time.Since(epochStart))
		// Observation piggybacks on the barrier that already exists:
		// committed (the window start) is the deterministic virtual
		// timestamp of this epoch.
		s.barrierTick(s.committed)
	}
	if hasLimit {
		for _, sh := range s.shards {
			if sh.now.Before(limit) {
				sh.now = limit
			}
		}
		if s.committed.Before(limit) {
			s.committed = limit
		}
	} else {
		for _, sh := range s.shards {
			if s.committed.Before(sh.now) {
				s.committed = sh.now
			}
		}
	}
	// Final tick at the post-run clock so observers sample the end state
	// even when the tail epoch was interval-gated away.
	s.barrierTick(s.committed)
}

func maxTime() time.Time { return time.Unix(1<<62, 0) }

// nextEventTime finds the earliest pending event across shards, along
// with the total pending count (the parallel-vs-inline heuristic).
// Called only at barriers, when all outboxes are drained.
func (s *Simulator) nextEventTime() (time.Time, int, bool) {
	var at time.Time
	pending := 0
	found := false
	for _, sh := range s.shards {
		n := sh.events.len()
		if n == 0 {
			continue
		}
		pending += n
		if h := sh.events.h[0].at; !found || h.Before(at) {
			at, found = h, true
		}
	}
	return at, pending, found
}

// phase selectors for the worker pool.
const (
	phaseRun = iota
	phaseMerge
)

// parallelPhase runs one epoch phase over all shards with the given
// worker count. Shards are claimed dynamically (execution is a pure
// function of shard state, so which worker runs a shard cannot affect
// results — only load balance).
func (s *Simulator) parallelPhase(workers, phase int, end time.Time) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(s.shards) {
					return
				}
				if phase == phaseRun {
					s.shards[k].runWindow(end)
				} else {
					s.shards[k].mergeIncoming()
				}
			}
		}()
	}
	wg.Wait()
}

// runWindow executes the shard's events with timestamps strictly before
// end. Events it generates for its own shard join the queue immediately;
// events for other shards are staged in the outbox.
func (sh *shard) runWindow(end time.Time) {
	for sh.events.len() > 0 && sh.events.h[0].at.Before(end) {
		ev := sh.events.pop()
		sh.now = ev.at
		sh.mEvents.Inc()
		sh.dispatchEvent(&ev)
	}
}

// mergeIncoming drains every other shard's outbox slot addressed to this
// shard and inserts the events in deterministic (time, source shard,
// source sequence) order, re-homing in-flight packets to this shard's
// pool. Runs in the barrier's merge phase: sources are quiescent, and
// each (source, destination) slot has exactly one reader.
func (sh *shard) mergeIncoming() {
	buf := sh.mergeBuf[:0]
	for _, src := range sh.sim.shards {
		if src == sh {
			continue
		}
		// Reclaim buffers this shard allocated that died on src's shard,
		// so producer shards keep recycling instead of allocating anew.
		if hb := src.pool.homebound; len(hb) > sh.id && len(hb[sh.id]) > 0 {
			for _, p := range hb[sh.id] {
				p.pool = &sh.pool
				sh.pool.free = append(sh.pool.free, p)
			}
			for i := range hb[sh.id] {
				hb[sh.id][i] = nil
			}
			src.pool.homebound[sh.id] = hb[sh.id][:0]
		}
		if len(src.outbox) <= sh.id {
			continue
		}
		in := src.outbox[sh.id]
		if len(in) == 0 {
			continue
		}
		buf = append(buf, in...)
		for i := range in {
			in[i] = remoteEvent{} // drop packet references for the GC
		}
		src.outbox[sh.id] = in[:0]
	}
	if len(buf) == 0 {
		sh.mergeBuf = buf
		return
	}
	slices.SortFunc(buf, func(a, b remoteEvent) int {
		switch {
		case a.ev.at.Before(b.ev.at):
			return -1
		case b.ev.at.Before(a.ev.at):
			return 1
		case a.src != b.src:
			return int(a.src) - int(b.src)
		case a.ev.seq < b.ev.seq:
			return -1
		case a.ev.seq > b.ev.seq:
			return 1
		}
		return 0
	})
	for i := range buf {
		ev := buf[i].ev
		if ev.pkt != nil {
			ev.pkt.pool = &sh.pool // re-home: Release returns it here
		}
		sh.seq++
		ev.seq = sh.seq
		sh.events.push(ev)
		buf[i] = remoteEvent{}
	}
	sh.mergeBuf = buf[:0]
}

// flushTraces fires buffered trace events in globally merged (time,
// shard, seq) order — a total order independent of worker count — then
// resets the per-shard buffers. Runs single-threaded at the barrier.
func (s *Simulator) flushTraces() {
	if len(s.traces) == 0 {
		return
	}
	total := 0
	for _, sh := range s.shards {
		total += len(sh.traceBuf)
	}
	if total == 0 {
		return
	}
	type flushRec struct {
		rec   traceRec
		shard int
	}
	recs := make([]flushRec, 0, total)
	for _, sh := range s.shards {
		for _, r := range sh.traceBuf {
			recs = append(recs, flushRec{rec: r, shard: sh.id})
		}
	}
	slices.SortFunc(recs, func(a, b flushRec) int {
		switch {
		case a.rec.at.Before(b.rec.at):
			return -1
		case b.rec.at.Before(a.rec.at):
			return 1
		case a.shard != b.shard:
			return a.shard - b.shard
		case a.rec.seq < b.rec.seq:
			return -1
		case a.rec.seq > b.rec.seq:
			return 1
		}
		return 0
	})
	for _, fr := range recs {
		sh := s.shards[fr.shard]
		ev := TraceEvent{
			Kind:    fr.rec.kind,
			Time:    fr.rec.at,
			Node:    fr.rec.node,
			Pkt:     sh.traceBytes[fr.rec.off : fr.rec.off+fr.rec.n],
			Flow:    fr.rec.flow,
			Journey: fr.rec.journey,
			Attr:    fr.rec.attr,
		}
		for _, h := range s.traces {
			h(ev)
		}
	}
	for _, sh := range s.shards {
		sh.traceBuf = sh.traceBuf[:0]
		sh.traceBytes = sh.traceBytes[:0]
	}
}
