package netem

import (
	"time"

	"netneutral/internal/obs"
)

// The engine's own telemetry lives on an obs.Registry owned by the
// Simulator: every counter the hot path touches is a per-shard stripe
// fetched once at shard creation, so counting a delivery is a plain
// field increment on shard-local memory — no atomics, no allocation,
// and no serialization at epoch barriers. The legacy accessors
// (Delivered, PoolStats, Link.Stats, ...) are thin reads over the same
// registry. Gauges (heap depth, pool occupancy) are refreshed at
// barriers, where shards are quiescent.
//
// Determinism contract: every non-volatile metric is a pure function of
// deterministic sim state, so with a fixed seed the registry's merged
// values — and an attached Recorder's time-series rings — are
// bit-identical at any worker count. The one wall-clock family the
// engine keeps (netem_epoch_wall_ns) is registered obs.Volatile so
// recorders exclude it.

// simMetrics is the simulator's registry plus the families the engine
// writes.
type simMetrics struct {
	reg *obs.Registry

	events    *obs.CounterVec
	delivered *obs.CounterVec
	forwarded *obs.CounterVec
	dropped   *obs.CounterVec
	poolAlloc *obs.CounterVec
	poolGets  *obs.CounterVec
	linkTx    *obs.CounterVec
	linkQDrop *obs.CounterVec
	heapDepth *obs.GaugeVec
	poolFree  *obs.GaugeVec

	epochs    *obs.Counter
	epochWall *obs.HistStripe
	lookahead *obs.Gauge
}

func newSimMetrics() *simMetrics {
	reg := obs.NewRegistry()
	m := &simMetrics{reg: reg}
	m.events = reg.Counter("netem_events_total",
		"Events executed across all shard event loops.")
	m.delivered = reg.Counter("netem_delivered_packets_total",
		"Packets locally delivered anywhere in the network.")
	m.forwarded = reg.Counter("netem_forwarded_packets_total",
		"Router forwarding decisions (one per transit hop).")
	m.dropped = reg.Counter("netem_dropped_packets_total",
		"Packets dropped (queue, policy, no-route, TTL).")
	m.poolAlloc = reg.Counter("netem_pool_allocated_buffers_total",
		"Packet buffers ever created across shard pools.")
	m.poolGets = reg.Counter("netem_pool_checkouts_total",
		"Packet buffer checkouts (pool hits plus misses).")
	m.linkTx = reg.Counter("netem_link_tx_packets_total",
		"Packets that completed link serialization.")
	m.linkQDrop = reg.Counter("netem_link_queue_drops_total",
		"Packets dropped by full link egress queues.")
	m.heapDepth = reg.Gauge("netem_heap_depth",
		"Pending events across shard heaps, sampled at barriers.")
	m.poolFree = reg.Gauge("netem_pool_free_buffers",
		"Free packet buffers across shard pools, sampled at barriers.")
	m.epochs = reg.Counter("netem_epochs_total",
		"Conservative epochs (barrier rounds) executed.").Stripe(0)
	m.epochWall = reg.Histogram("netem_epoch_wall_ns",
		"Wall-clock nanoseconds per epoch; volatile, excluded from deterministic recording.",
		obs.Volatile()).Stripe(0)
	m.lookahead = reg.Gauge("netem_lookahead_ns",
		"Conservative lookahead: minimum cross-shard link delay (0 when no links cross shards).").Stripe(0)
	return m
}

// attachShard hands a new shard its write stripes.
func (m *simMetrics) attachShard(sh *shard) {
	id := sh.id
	sh.mEvents = m.events.Stripe(id)
	sh.mDelivered = m.delivered.Stripe(id)
	sh.mForwarded = m.forwarded.Stripe(id)
	sh.mDropped = m.dropped.Stripe(id)
	sh.mLinkTx = m.linkTx.Stripe(id)
	sh.mLinkQDrop = m.linkQDrop.Stripe(id)
	sh.gHeap = m.heapDepth.Stripe(id)
	sh.gPoolFree = m.poolFree.Stripe(id)
	sh.pool.allocated = m.poolAlloc.Stripe(id)
	sh.pool.gets = m.poolGets.Stripe(id)
}

// Metrics returns the simulator's metric registry. Experiments and
// daemons register their own families here (get-or-create, so shared
// names compose); exporters snapshot it at barriers or after runs.
func (s *Simulator) Metrics() *obs.Registry { return s.met.reg }

// OnBarrier registers fn to run at every synchronization point of the
// engine — each epoch barrier of a sharded run (single-threaded, all
// shards quiescent) and the end of every serial Run/RunUntil call. now
// is virtual time. The obs.Recorder ticks from here, piggybacking on
// barriers that already exist: observation adds no synchronization and
// cannot change the event schedule. Callbacks must not mutate sim
// state.
func (s *Simulator) OnBarrier(fn func(now time.Time)) {
	s.onBarrier = append(s.onBarrier, fn)
}

// AttachFlightRecorder routes the engine's packet events through fr:
// every shard gets its own write stripe, so sampling decisions are a
// pure function of per-shard event sequences and the recorded set is
// bit-identical at any worker count. Attach before the run. Unlike
// Trace hooks, the flight recorder is bounded: head sampling plus
// per-flow tags, ring-buffered per shard.
func (s *Simulator) AttachFlightRecorder(fr *obs.FlightRecorder) {
	s.flight = fr
	for _, sh := range s.shards {
		sh.flight = fr.Stripe(sh.id)
	}
}

// barrierTick refreshes barrier-sampled gauges and fires OnBarrier
// callbacks. Runs single-threaded with all shards quiescent; now must
// be deterministic virtual time.
func (s *Simulator) barrierTick(now time.Time) {
	if len(s.onBarrier) == 0 {
		return
	}
	for _, sh := range s.shards {
		sh.gHeap.Set(int64(sh.events.len()))
		sh.gPoolFree.Set(int64(len(sh.pool.free)))
	}
	for _, fn := range s.onBarrier {
		fn(now)
	}
}

// FlowHash maps a packet's canonical FlowKey to a stable 64-bit flow id
// (FNV-1a finished with a splitmix avalanche) — the id the flight
// recorder records and tags key on. Returns 0 for packets too short to
// carry an IPv4 header.
func FlowHash(pkt []byte) uint64 {
	k, _, ok := FlowKeyOf(pkt)
	if !ok {
		return 0
	}
	return FlowKeyHash(k)
}

// FlowKeyHash maps a canonical FlowKey to the same 64-bit flow id
// FlowHash computes from packet bytes — how harnesses name the flows
// they tag or trace without constructing packets.
func FlowKeyHash(k FlowKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range k.Lo {
		h = (h ^ uint64(b)) * prime64
	}
	for _, b := range k.Hi {
		h = (h ^ uint64(b)) * prime64
	}
	h = (h ^ uint64(k.Proto)) * prime64
	return splitmix64(h)
}
