package netem

import (
	"netneutral/internal/obs"

	"fmt"
	"net/netip"
	"time"
)

// FanoutSpec parameterizes the canonical paper topology at scale: outside
// users reach a supportive ISP through a discriminatory transit network;
// behind the supportive ISP's border (where the neutralizer and its
// anycast address live) an edge tier fans out to N customer hosts.
//
//	outside[i] ── transit ── border ──┬── edge0 ──┬── host0
//	                        (anycast) │           ├── host1 …
//	                                  └── edge1 ──┴── …
//
// The builder installs hierarchical routes directly — hosts default
// upward, routers hold host routes for their own subtree plus a default —
// so stamping out a 10k-host metro costs O(hosts), not the
// O(n·m·log n) of a global BuildRoutes.
type FanoutSpec struct {
	// Hosts is the number of customer hosts (N; tens of thousands OK).
	Hosts int
	// HostsPerEdge bounds the fan-out of one edge router (default 256).
	HostsPerEdge int
	// Outside is the number of outside user nodes (default 1).
	Outside int
	// Anycast is the neutralizer service address announced at the border
	// (default 10.200.0.1).
	Anycast netip.Addr
	// HostLink, EdgeLink, TransitLink, OutsideLink configure the
	// host-edge, edge-border, border-transit and transit-outside links.
	// Zero values mean 1ms delay, infinite rate, default queue.
	HostLink, EdgeLink, TransitLink, OutsideLink LinkConfig

	// CustomerNet and OutsideNet override the fan-out's address blocks
	// (defaults 10.64.0.0/10 and 172.16.0.0/12). BuildBackbone stamps
	// one metro per disjoint block pair; host capacity is validated
	// against the block size.
	CustomerNet, OutsideNet netip.Prefix
	// NamePrefix prefixes every named node ("m3/" makes "m3/border"), so
	// multiple fan-outs can share a simulator.
	NamePrefix string
	// Shards pins the fan-out onto shard ids already declared with
	// SetShardCount: transit, border, and outside users on Shards[0],
	// edge subtrees round-robin across the whole list. This is how
	// BuildBackbone gives each metro its own shard (or few) without the
	// per-edge shard explosion of ShardSubtrees — cross-shard outboxes
	// are O(shards²), so a million-host backbone wants dozens of shards,
	// not thousands. More than one shard requires a positive EdgeLink
	// delay (the conservative lookahead). Mutually exclusive with
	// ShardSubtrees.
	Shards []int
	// CompactHosts slab-allocates anonymous leaf hosts via
	// Simulator.AddHostBlock: no per-host name, map entries, or separate
	// Node/Link allocations. Hosts are then not resolvable by
	// Simulator.Node/name — use Fanout.Hosts — and per-host state drops
	// to a few hundred bytes, which is what lets BuildBackbone fit a
	// million hosts.
	CompactHosts bool

	// ShardSubtrees partitions the fan-out for the parallel engine:
	// the transit network and the outside users stay in shard 0, the
	// border (where the neutralizer runs) gets shard 1, and each edge
	// router with its customer hosts gets its own shard — so the
	// outside world, the neutralizer, and the customer subtrees
	// pipeline across workers. Shard assignment depends only on the
	// topology, never on the worker count, which is what keeps seeded
	// runs bit-identical at any Simulator.SetWorkers setting. Requires
	// TransitLink and EdgeLink to keep a positive propagation delay
	// (they bound the engine's conservative lookahead).
	ShardSubtrees bool
}

// Fanout is a built fan-out topology with handles to every tier.
type Fanout struct {
	Sim  *Simulator
	Spec FanoutSpec

	// Border is the supportive ISP's border router: the anycast member
	// where experiments attach the neutralizer.
	Border *Node
	// Transit is the discriminatory middle network's router: where
	// experiments attach isp policies and eavesdroppers.
	Transit *Node
	Outside []*Node
	Edges   []*Node
	// EdgeLinks[e] is the border↔edge e link — where BuildBackbone's
	// fluid background aggregates attach.
	EdgeLinks []*Link
	Hosts     []*Node

	// CustomerNet covers every host address (the supportive ISP's block).
	CustomerNet netip.Prefix
	// OutsideNet covers every outside user address.
	OutsideNet netip.Prefix
}

// Default single-fanout addressing plan: hosts get consecutive addresses
// starting at CustomerNet's base + 1 (default 10.64.0.0/10: capacity
// 2²²−1 hosts, checked against Spec.Hosts at build time, not implied),
// outside users likewise in OutsideNet (default 172.16.0.0/12). Multi-
// metro builds override both per metro; BuildBackbone's carve of the
// 10.0.0.0/9 space is validated against overlap there.
var (
	fanoutCustomerNet = netip.MustParsePrefix("10.64.0.0/10")
	fanoutOutsideNet  = netip.MustParsePrefix("172.16.0.0/12")
	fanoutAnycast     = netip.MustParseAddr("10.200.0.1")
	defaultRoute      = netip.MustParsePrefix("0.0.0.0/0")
)

func addrAt(base netip.Prefix, i int) netip.Addr {
	return uintToIPv4(ipv4ToUint(base.Addr()) + 1 + uint32(i))
}

func ipv4ToUint(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func uintToIPv4(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

func defaultLink(c LinkConfig) LinkConfig {
	if c == (LinkConfig{}) {
		return LinkConfig{Delay: time.Millisecond}
	}
	return c
}

// HostAddr returns the address of customer host i.
func (f *Fanout) HostAddr(i int) netip.Addr { return addrAt(f.CustomerNet, i) }

// OutsideAddr returns the address of outside user i.
func (f *Fanout) OutsideAddr(i int) netip.Addr { return addrAt(f.OutsideNet, i) }

// BuildFanout stamps the fan-out topology onto sim. With the default
// address blocks it assumes the plan above is unclaimed; multi-fanout
// simulators (BuildBackbone) pass disjoint CustomerNet/OutsideNet blocks
// and a NamePrefix per metro.
//
// Routing is prefix-compressed: the border installs one range route per
// edge router (the edge's contiguous slice of CustomerNet) and each edge
// installs a single block route — a flat offset-indexed array of host
// links — instead of a /32 map entry per customer. Route state per
// router is O(edges), not O(hosts).
func BuildFanout(sim *Simulator, spec FanoutSpec) (*Fanout, error) {
	if spec.Hosts <= 0 {
		return nil, fmt.Errorf("netem: fanout needs at least 1 host, got %d", spec.Hosts)
	}
	if spec.HostsPerEdge <= 0 {
		spec.HostsPerEdge = 256
	}
	if spec.Outside <= 0 {
		spec.Outside = 1
	}
	if !spec.Anycast.IsValid() {
		spec.Anycast = fanoutAnycast
	}
	if !spec.CustomerNet.IsValid() {
		spec.CustomerNet = fanoutCustomerNet
	}
	if !spec.OutsideNet.IsValid() {
		spec.OutsideNet = fanoutOutsideNet
	}
	if !spec.CustomerNet.Addr().Is4() || !spec.OutsideNet.Addr().Is4() {
		return nil, fmt.Errorf("netem: fanout address blocks must be IPv4")
	}
	if uint64(spec.Hosts) >= uint64(1)<<(32-uint(spec.CustomerNet.Bits())) {
		return nil, fmt.Errorf("netem: %d hosts exceed %v", spec.Hosts, spec.CustomerNet)
	}
	if uint64(spec.Outside) >= uint64(1)<<(32-uint(spec.OutsideNet.Bits())) {
		return nil, fmt.Errorf("netem: %d outside users exceed %v", spec.Outside, spec.OutsideNet)
	}
	if spec.ShardSubtrees && len(spec.Shards) > 0 {
		return nil, fmt.Errorf("netem: ShardSubtrees and Shards are mutually exclusive")
	}
	if spec.ShardSubtrees {
		if defaultLink(spec.TransitLink).Delay <= 0 || defaultLink(spec.EdgeLink).Delay <= 0 {
			return nil, fmt.Errorf("netem: ShardSubtrees needs positive TransitLink and EdgeLink delay (the conservative lookahead)")
		}
	}
	if len(spec.Shards) > 1 && defaultLink(spec.EdgeLink).Delay <= 0 {
		return nil, fmt.Errorf("netem: multi-shard fanout needs positive EdgeLink delay (the conservative lookahead)")
	}
	for _, id := range spec.Shards {
		if id < 0 || id >= sim.ShardCount() {
			return nil, fmt.Errorf("netem: fanout shard %d outside declared range [0,%d)", id, sim.ShardCount())
		}
	}

	f := &Fanout{
		Sim:         sim,
		Spec:        spec,
		CustomerNet: spec.CustomerNet,
		OutsideNet:  spec.OutsideNet,
	}
	name := func(base string) string { return spec.NamePrefix + base }
	border, err := sim.AddNode(name("border"), "supportive")
	if err != nil {
		return nil, err
	}
	transit, err := sim.AddNode(name("transit"), "transit")
	if err != nil {
		return nil, err
	}
	f.Border, f.Transit = border, transit
	nEdges := (spec.Hosts + spec.HostsPerEdge - 1) / spec.HostsPerEdge
	edgeShard := func(e int) int { return 0 }
	switch {
	case spec.ShardSubtrees:
		sim.SetShardCount(2 + nEdges)
		border.SetShard(1)
		edgeShard = func(e int) int { return 2 + e }
	case len(spec.Shards) > 0:
		border.SetShard(spec.Shards[0])
		transit.SetShard(spec.Shards[0])
		edgeShard = func(e int) int { return spec.Shards[e%len(spec.Shards)] }
	}
	upLink := sim.Connect(transit, border, defaultLink(spec.TransitLink))
	border.AddRoute(defaultRoute, upLink)
	transit.AddRoute(f.CustomerNet, upLink)
	transit.AddRoute(netip.PrefixFrom(spec.Anycast, spec.Anycast.BitLen()), upLink)
	sim.AddAnycast(spec.Anycast, border)

	for o := 0; o < spec.Outside; o++ {
		out, err := sim.AddNode(name(fmt.Sprintf("outside%d", o)), "outside", f.OutsideAddr(o))
		if err != nil {
			return nil, err
		}
		if len(spec.Shards) > 0 {
			out.SetShard(spec.Shards[0])
		}
		l := sim.Connect(out, transit, defaultLink(spec.OutsideLink))
		out.AddRoute(defaultRoute, l)
		transit.AddRoute(netip.PrefixFrom(out.Addr(), 32), l)
		f.Outside = append(f.Outside, out)
	}

	var hosts []*Node
	var linkSlab []Link
	var dirSlab []linkDir
	if spec.CompactHosts {
		hosts, err = sim.AddHostBlock("supportive", f.HostAddr(0), spec.Hosts)
		if err != nil {
			return nil, err
		}
		linkSlab = make([]Link, spec.Hosts)
		dirSlab = make([]linkDir, 2*spec.Hosts)
	}
	hostCfg := defaultLink(spec.HostLink)
	f.Edges = make([]*Node, 0, nEdges)
	f.EdgeLinks = make([]*Link, 0, nEdges)
	f.Hosts = make([]*Node, 0, spec.Hosts)
	for e := 0; e < nEdges; e++ {
		edge, err := sim.AddNode(name(fmt.Sprintf("edge%d", e)), "supportive")
		if err != nil {
			return nil, err
		}
		if sh := edgeShard(e); sh != 0 || len(spec.Shards) > 0 {
			edge.SetShard(sh)
		}
		down := sim.Connect(border, edge, defaultLink(spec.EdgeLink))
		edge.AddRoute(defaultRoute, down)
		f.Edges = append(f.Edges, edge)
		f.EdgeLinks = append(f.EdgeLinks, down)
		lo, hi := e*spec.HostsPerEdge, min((e+1)*spec.HostsPerEdge, spec.Hosts)
		hostLinks := make([]*Link, hi-lo)
		for i := lo; i < hi; i++ {
			var host *Node
			var hl *Link
			if spec.CompactHosts {
				host = hosts[i]
				hl = sim.connectInto(&linkSlab[i], &dirSlab[2*i], &dirSlab[2*i+1], edge, host, hostCfg, hostCfg)
			} else {
				host, err = sim.AddNode(name(fmt.Sprintf("host%d", i)), "supportive", f.HostAddr(i))
				if err != nil {
					return nil, err
				}
				hl = sim.Connect(edge, host, hostCfg)
			}
			if sh := edgeShard(e); sh != 0 {
				host.SetShard(sh)
			}
			host.AddRoute(defaultRoute, hl)
			hostLinks[i-lo] = hl
			f.Hosts = append(f.Hosts, host)
		}
		if err := edge.AddBlockRoute(f.HostAddr(lo), hostLinks); err != nil {
			return nil, err
		}
		if err := border.AddRangeRoute(f.HostAddr(lo), hi-lo, down); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// DeliveryCount tallies customer-host deliveries. Counts live on the
// simulator's metric registry (family netem_fanout_delivered_packets_total)
// as one cache-line-padded stripe per shard, so hosts on different
// shards never write the same word during a parallel run.
type DeliveryCount struct {
	counts []*obs.Counter
}

// Total sums the per-shard tallies; call it after (or between) runs.
func (d *DeliveryCount) Total() uint64 {
	var t uint64
	for _, c := range d.counts {
		t += c.Value()
	}
	return t
}

// CountDeliveries installs one shared counting handler per shard on
// every customer host and returns the tally: the standard measure wiring
// for scale experiments, where per-host closures would cost N
// allocations — and where one shared counter would be a data race across
// shards. Each call appends fresh registry stripes, so Total counts only
// this tally's deliveries even if the family is shared.
func (f *Fanout) CountDeliveries() *DeliveryCount {
	vec := f.Sim.Metrics().Counter("netem_fanout_delivered_packets_total",
		"Customer-host deliveries counted by Fanout.CountDeliveries.")
	d := &DeliveryCount{counts: make([]*obs.Counter, f.Sim.ShardCount())}
	for i := range d.counts {
		d.counts[i] = vec.NewStripe()
	}
	handlers := make([]Handler, f.Sim.ShardCount())
	for _, host := range f.Hosts {
		id := host.ShardID()
		if handlers[id] == nil {
			c := d.counts[id]
			handlers[id] = func(time.Time, []byte) { c.Inc() }
		}
		host.SetHandler(handlers[id])
	}
	return d
}
