package netem

import (
	"fmt"
	"net/netip"
	"time"
)

// FanoutSpec parameterizes the canonical paper topology at scale: outside
// users reach a supportive ISP through a discriminatory transit network;
// behind the supportive ISP's border (where the neutralizer and its
// anycast address live) an edge tier fans out to N customer hosts.
//
//	outside[i] ── transit ── border ──┬── edge0 ──┬── host0
//	                        (anycast) │           ├── host1 …
//	                                  └── edge1 ──┴── …
//
// The builder installs hierarchical routes directly — hosts default
// upward, routers hold host routes for their own subtree plus a default —
// so stamping out a 10k-host metro costs O(hosts), not the
// O(n·m·log n) of a global BuildRoutes.
type FanoutSpec struct {
	// Hosts is the number of customer hosts (N; tens of thousands OK).
	Hosts int
	// HostsPerEdge bounds the fan-out of one edge router (default 256).
	HostsPerEdge int
	// Outside is the number of outside user nodes (default 1).
	Outside int
	// Anycast is the neutralizer service address announced at the border
	// (default 10.200.0.1).
	Anycast netip.Addr
	// HostLink, EdgeLink, TransitLink, OutsideLink configure the
	// host-edge, edge-border, border-transit and transit-outside links.
	// Zero values mean 1ms delay, infinite rate, default queue.
	HostLink, EdgeLink, TransitLink, OutsideLink LinkConfig
}

// Fanout is a built fan-out topology with handles to every tier.
type Fanout struct {
	Sim  *Simulator
	Spec FanoutSpec

	// Border is the supportive ISP's border router: the anycast member
	// where experiments attach the neutralizer.
	Border *Node
	// Transit is the discriminatory middle network's router: where
	// experiments attach isp policies and eavesdroppers.
	Transit *Node
	Outside []*Node
	Edges   []*Node
	Hosts   []*Node

	// CustomerNet covers every host address (the supportive ISP's block).
	CustomerNet netip.Prefix
	// OutsideNet covers every outside user address.
	OutsideNet netip.Prefix
}

// Fan-out addressing plan: hosts get consecutive addresses in
// 10.64.0.0/10 (room for ~4M), outside users in 172.16.0.0/12.
var (
	fanoutCustomerNet = netip.MustParsePrefix("10.64.0.0/10")
	fanoutOutsideNet  = netip.MustParsePrefix("172.16.0.0/12")
	fanoutAnycast     = netip.MustParseAddr("10.200.0.1")
	defaultRoute      = netip.MustParsePrefix("0.0.0.0/0")
)

func addrAt(base netip.Prefix, i int) netip.Addr {
	v := ipv4ToUint(base.Addr()) + 1 + uint32(i)
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

func ipv4ToUint(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func defaultLink(c LinkConfig) LinkConfig {
	if c == (LinkConfig{}) {
		return LinkConfig{Delay: time.Millisecond}
	}
	return c
}

// HostAddr returns the address of customer host i.
func (f *Fanout) HostAddr(i int) netip.Addr { return addrAt(f.CustomerNet, i) }

// OutsideAddr returns the address of outside user i.
func (f *Fanout) OutsideAddr(i int) netip.Addr { return addrAt(f.OutsideNet, i) }

// BuildFanout stamps the fan-out topology onto sim. Call it on a fresh
// simulator: it assumes the address plan above is unclaimed.
func BuildFanout(sim *Simulator, spec FanoutSpec) (*Fanout, error) {
	if spec.Hosts <= 0 {
		return nil, fmt.Errorf("netem: fanout needs at least 1 host, got %d", spec.Hosts)
	}
	if spec.HostsPerEdge <= 0 {
		spec.HostsPerEdge = 256
	}
	if spec.Outside <= 0 {
		spec.Outside = 1
	}
	if !spec.Anycast.IsValid() {
		spec.Anycast = fanoutAnycast
	}
	if uint64(spec.Hosts) >= uint64(1)<<(32-uint(fanoutCustomerNet.Bits())) {
		return nil, fmt.Errorf("netem: %d hosts exceed %v", spec.Hosts, fanoutCustomerNet)
	}

	f := &Fanout{
		Sim:         sim,
		Spec:        spec,
		CustomerNet: fanoutCustomerNet,
		OutsideNet:  fanoutOutsideNet,
	}
	border, err := sim.AddNode("border", "supportive")
	if err != nil {
		return nil, err
	}
	transit, err := sim.AddNode("transit", "transit")
	if err != nil {
		return nil, err
	}
	f.Border, f.Transit = border, transit
	upLink := sim.Connect(transit, border, defaultLink(spec.TransitLink))
	border.AddRoute(defaultRoute, upLink)
	transit.AddRoute(f.CustomerNet, upLink)
	transit.AddRoute(netip.PrefixFrom(spec.Anycast, spec.Anycast.BitLen()), upLink)
	sim.AddAnycast(spec.Anycast, border)

	for o := 0; o < spec.Outside; o++ {
		out, err := sim.AddNode(fmt.Sprintf("outside%d", o), "outside", f.OutsideAddr(o))
		if err != nil {
			return nil, err
		}
		l := sim.Connect(out, transit, defaultLink(spec.OutsideLink))
		out.AddRoute(defaultRoute, l)
		transit.AddRoute(netip.PrefixFrom(out.Addr(), 32), l)
		f.Outside = append(f.Outside, out)
	}

	nEdges := (spec.Hosts + spec.HostsPerEdge - 1) / spec.HostsPerEdge
	f.Edges = make([]*Node, 0, nEdges)
	f.Hosts = make([]*Node, 0, spec.Hosts)
	for e := 0; e < nEdges; e++ {
		edge, err := sim.AddNode(fmt.Sprintf("edge%d", e), "supportive")
		if err != nil {
			return nil, err
		}
		down := sim.Connect(border, edge, defaultLink(spec.EdgeLink))
		edge.AddRoute(defaultRoute, down)
		f.Edges = append(f.Edges, edge)
		for i := e * spec.HostsPerEdge; i < (e+1)*spec.HostsPerEdge && i < spec.Hosts; i++ {
			addr := f.HostAddr(i)
			host, err := sim.AddNode(fmt.Sprintf("host%d", i), "supportive", addr)
			if err != nil {
				return nil, err
			}
			hl := sim.Connect(edge, host, defaultLink(spec.HostLink))
			host.AddRoute(defaultRoute, hl)
			edge.AddRoute(netip.PrefixFrom(addr, 32), hl)
			border.AddRoute(netip.PrefixFrom(addr, 32), down)
			f.Hosts = append(f.Hosts, host)
		}
	}
	return f, nil
}

// CountDeliveries installs one shared counting handler on every customer
// host and returns the counter: the standard measure wiring for scale
// experiments, where per-host closures would cost N allocations.
func (f *Fanout) CountDeliveries() *uint64 {
	var count uint64
	h := func(time.Time, []byte) { count++ }
	for _, host := range f.Hosts {
		host.SetHandler(h)
	}
	return &count
}
