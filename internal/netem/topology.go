package netem

import (
	"netneutral/internal/obs"

	"fmt"
	"net/netip"
	"time"
)

// FanoutSpec parameterizes the canonical paper topology at scale: outside
// users reach a supportive ISP through a discriminatory transit network;
// behind the supportive ISP's border (where the neutralizer and its
// anycast address live) an edge tier fans out to N customer hosts.
//
//	outside[i] ── transit ── border ──┬── edge0 ──┬── host0
//	                        (anycast) │           ├── host1 …
//	                                  └── edge1 ──┴── …
//
// The builder installs hierarchical routes directly — hosts default
// upward, routers hold host routes for their own subtree plus a default —
// so stamping out a 10k-host metro costs O(hosts), not the
// O(n·m·log n) of a global BuildRoutes.
type FanoutSpec struct {
	// Hosts is the number of customer hosts (N; tens of thousands OK).
	Hosts int
	// HostsPerEdge bounds the fan-out of one edge router (default 256).
	HostsPerEdge int
	// Outside is the number of outside user nodes (default 1).
	Outside int
	// Anycast is the neutralizer service address announced at the border
	// (default 10.200.0.1).
	Anycast netip.Addr
	// HostLink, EdgeLink, TransitLink, OutsideLink configure the
	// host-edge, edge-border, border-transit and transit-outside links.
	// Zero values mean 1ms delay, infinite rate, default queue.
	HostLink, EdgeLink, TransitLink, OutsideLink LinkConfig

	// ShardSubtrees partitions the fan-out for the parallel engine:
	// the transit network and the outside users stay in shard 0, the
	// border (where the neutralizer runs) gets shard 1, and each edge
	// router with its customer hosts gets its own shard — so the
	// outside world, the neutralizer, and the customer subtrees
	// pipeline across workers. Shard assignment depends only on the
	// topology, never on the worker count, which is what keeps seeded
	// runs bit-identical at any Simulator.SetWorkers setting. Requires
	// TransitLink and EdgeLink to keep a positive propagation delay
	// (they bound the engine's conservative lookahead).
	ShardSubtrees bool
}

// Fanout is a built fan-out topology with handles to every tier.
type Fanout struct {
	Sim  *Simulator
	Spec FanoutSpec

	// Border is the supportive ISP's border router: the anycast member
	// where experiments attach the neutralizer.
	Border *Node
	// Transit is the discriminatory middle network's router: where
	// experiments attach isp policies and eavesdroppers.
	Transit *Node
	Outside []*Node
	Edges   []*Node
	Hosts   []*Node

	// CustomerNet covers every host address (the supportive ISP's block).
	CustomerNet netip.Prefix
	// OutsideNet covers every outside user address.
	OutsideNet netip.Prefix
}

// Fan-out addressing plan: hosts get consecutive addresses in
// 10.64.0.0/10 (room for ~4M), outside users in 172.16.0.0/12.
var (
	fanoutCustomerNet = netip.MustParsePrefix("10.64.0.0/10")
	fanoutOutsideNet  = netip.MustParsePrefix("172.16.0.0/12")
	fanoutAnycast     = netip.MustParseAddr("10.200.0.1")
	defaultRoute      = netip.MustParsePrefix("0.0.0.0/0")
)

func addrAt(base netip.Prefix, i int) netip.Addr {
	v := ipv4ToUint(base.Addr()) + 1 + uint32(i)
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

func ipv4ToUint(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func defaultLink(c LinkConfig) LinkConfig {
	if c == (LinkConfig{}) {
		return LinkConfig{Delay: time.Millisecond}
	}
	return c
}

// HostAddr returns the address of customer host i.
func (f *Fanout) HostAddr(i int) netip.Addr { return addrAt(f.CustomerNet, i) }

// OutsideAddr returns the address of outside user i.
func (f *Fanout) OutsideAddr(i int) netip.Addr { return addrAt(f.OutsideNet, i) }

// BuildFanout stamps the fan-out topology onto sim. Call it on a fresh
// simulator: it assumes the address plan above is unclaimed.
func BuildFanout(sim *Simulator, spec FanoutSpec) (*Fanout, error) {
	if spec.Hosts <= 0 {
		return nil, fmt.Errorf("netem: fanout needs at least 1 host, got %d", spec.Hosts)
	}
	if spec.HostsPerEdge <= 0 {
		spec.HostsPerEdge = 256
	}
	if spec.Outside <= 0 {
		spec.Outside = 1
	}
	if !spec.Anycast.IsValid() {
		spec.Anycast = fanoutAnycast
	}
	if uint64(spec.Hosts) >= uint64(1)<<(32-uint(fanoutCustomerNet.Bits())) {
		return nil, fmt.Errorf("netem: %d hosts exceed %v", spec.Hosts, fanoutCustomerNet)
	}
	if spec.ShardSubtrees {
		if defaultLink(spec.TransitLink).Delay <= 0 || defaultLink(spec.EdgeLink).Delay <= 0 {
			return nil, fmt.Errorf("netem: ShardSubtrees needs positive TransitLink and EdgeLink delay (the conservative lookahead)")
		}
	}

	f := &Fanout{
		Sim:         sim,
		Spec:        spec,
		CustomerNet: fanoutCustomerNet,
		OutsideNet:  fanoutOutsideNet,
	}
	border, err := sim.AddNode("border", "supportive")
	if err != nil {
		return nil, err
	}
	transit, err := sim.AddNode("transit", "transit")
	if err != nil {
		return nil, err
	}
	f.Border, f.Transit = border, transit
	nEdges := (spec.Hosts + spec.HostsPerEdge - 1) / spec.HostsPerEdge
	if spec.ShardSubtrees {
		sim.SetShardCount(2 + nEdges)
		border.SetShard(1)
	}
	upLink := sim.Connect(transit, border, defaultLink(spec.TransitLink))
	border.AddRoute(defaultRoute, upLink)
	transit.AddRoute(f.CustomerNet, upLink)
	transit.AddRoute(netip.PrefixFrom(spec.Anycast, spec.Anycast.BitLen()), upLink)
	sim.AddAnycast(spec.Anycast, border)

	for o := 0; o < spec.Outside; o++ {
		out, err := sim.AddNode(fmt.Sprintf("outside%d", o), "outside", f.OutsideAddr(o))
		if err != nil {
			return nil, err
		}
		l := sim.Connect(out, transit, defaultLink(spec.OutsideLink))
		out.AddRoute(defaultRoute, l)
		transit.AddRoute(netip.PrefixFrom(out.Addr(), 32), l)
		f.Outside = append(f.Outside, out)
	}

	f.Edges = make([]*Node, 0, nEdges)
	f.Hosts = make([]*Node, 0, spec.Hosts)
	for e := 0; e < nEdges; e++ {
		edge, err := sim.AddNode(fmt.Sprintf("edge%d", e), "supportive")
		if err != nil {
			return nil, err
		}
		if spec.ShardSubtrees {
			edge.SetShard(2 + e)
		}
		down := sim.Connect(border, edge, defaultLink(spec.EdgeLink))
		edge.AddRoute(defaultRoute, down)
		f.Edges = append(f.Edges, edge)
		for i := e * spec.HostsPerEdge; i < (e+1)*spec.HostsPerEdge && i < spec.Hosts; i++ {
			addr := f.HostAddr(i)
			host, err := sim.AddNode(fmt.Sprintf("host%d", i), "supportive", addr)
			if err != nil {
				return nil, err
			}
			if spec.ShardSubtrees {
				host.SetShard(2 + e)
			}
			hl := sim.Connect(edge, host, defaultLink(spec.HostLink))
			host.AddRoute(defaultRoute, hl)
			edge.AddRoute(netip.PrefixFrom(addr, 32), hl)
			border.AddRoute(netip.PrefixFrom(addr, 32), down)
			f.Hosts = append(f.Hosts, host)
		}
	}
	return f, nil
}

// DeliveryCount tallies customer-host deliveries. Counts live on the
// simulator's metric registry (family netem_fanout_delivered_packets_total)
// as one cache-line-padded stripe per shard, so hosts on different
// shards never write the same word during a parallel run.
type DeliveryCount struct {
	counts []*obs.Counter
}

// Total sums the per-shard tallies; call it after (or between) runs.
func (d *DeliveryCount) Total() uint64 {
	var t uint64
	for _, c := range d.counts {
		t += c.Value()
	}
	return t
}

// CountDeliveries installs one shared counting handler per shard on
// every customer host and returns the tally: the standard measure wiring
// for scale experiments, where per-host closures would cost N
// allocations — and where one shared counter would be a data race across
// shards. Each call appends fresh registry stripes, so Total counts only
// this tally's deliveries even if the family is shared.
func (f *Fanout) CountDeliveries() *DeliveryCount {
	vec := f.Sim.Metrics().Counter("netem_fanout_delivered_packets_total",
		"Customer-host deliveries counted by Fanout.CountDeliveries.")
	d := &DeliveryCount{counts: make([]*obs.Counter, f.Sim.ShardCount())}
	for i := range d.counts {
		d.counts[i] = vec.NewStripe()
	}
	handlers := make([]Handler, f.Sim.ShardCount())
	for _, host := range f.Hosts {
		id := host.ShardID()
		if handlers[id] == nil {
			c := d.counts[id]
			handlers[id] = func(time.Time, []byte) { c.Inc() }
		}
		host.SetHandler(handlers[id])
	}
	return d
}
