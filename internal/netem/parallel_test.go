package netem

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// parTraceRec is one observed trace event, with the packet bytes copied
// out of the pooled buffer.
type parTraceRec struct {
	kind TraceKind
	at   int64
	node string
	pkt  []byte
}

// parWorldResult is everything a parallel run must reproduce exactly.
type parWorldResult struct {
	trace       []parTraceRec
	delivered   uint64
	forwarded   uint64
	dropped     uint64
	events      uint64
	hostTallies uint64
}

// runParWorld builds a random sharded fan-out from seed, drives random
// bidirectional traffic (downstream from outside, host-to-host chatter
// inside subtrees, upstream from hosts to outside), and runs it at the
// given worker count — partly in RunFor chunks to exercise partial
// epochs, then drained with Run.
func runParWorld(t testing.TB, seed int64, workers int) *parWorldResult {
	t.Helper()
	topoRng := rand.New(rand.NewSource(seed))
	hosts := 60 + topoRng.Intn(200)
	hpe := 16 + topoRng.Intn(48)
	d := func() time.Duration {
		return time.Duration(500+topoRng.Intn(1500)) * time.Microsecond
	}
	sim := NewSimulator(simStart, seed)
	f, err := BuildFanout(sim, FanoutSpec{
		Hosts: hosts, HostsPerEdge: hpe, Outside: 2,
		ShardSubtrees: true,
		HostLink:      LinkConfig{Delay: d()},
		EdgeLink:      LinkConfig{Delay: d(), RateBps: 50e6, QueueLen: 64},
		TransitLink:   LinkConfig{Delay: d(), RateBps: 80e6, QueueLen: 64},
		OutsideLink:   LinkConfig{Delay: d()},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetWorkers(workers)

	res := &parWorldResult{}
	sim.Trace(func(ev TraceEvent) {
		res.trace = append(res.trace, parTraceRec{
			kind: ev.Kind, at: ev.Time.UnixNano(), node: ev.Node.Name,
			pkt: bytes.Clone(ev.Pkt),
		})
	})
	delivered := f.CountDeliveries()

	const total = 400 * time.Millisecond
	end := simStart.Add(total)
	// A jittered self-rescheduling sender anchored to its node: the
	// shape every shard-pinned source in the tree uses.
	sender := func(node *Node, pkt []byte, meanGap time.Duration) {
		var seq uint64
		var step func()
		step = func() {
			if node.Now().After(end) {
				return
			}
			pkt[len(pkt)-1] = byte(seq)
			seq++
			_ = node.Send(pkt)
			gap := meanGap/2 + time.Duration(node.Rand().Int63n(int64(meanGap)))
			node.Schedule(gap, step)
		}
		node.Schedule(time.Duration(node.Rand().Int63n(int64(meanGap))), step)
	}

	// Downstream: outside0 sprays every 3rd host.
	for i := 0; i < hosts; i += 3 {
		sender(f.Outside[0], mkUDP(t, f.OutsideAddr(0), f.HostAddr(i), []byte{byte(i), 0}), 9*time.Millisecond)
	}
	// Subtree chatter: every 4th host talks to a neighbor under the
	// same edge (never leaves the shard).
	for i := 0; i+1 < hosts; i += 4 {
		j := i + 1
		if i/hpe != j/hpe {
			continue
		}
		sender(f.Hosts[i], mkUDP(t, f.HostAddr(i), f.HostAddr(j), []byte{0xCC, 0}), 6*time.Millisecond)
	}
	// Upstream: every 7th host talks to outside1 (crosses every tier).
	var upstream uint64
	f.Outside[1].SetHandler(func(time.Time, []byte) { upstream++ })
	for i := 0; i < hosts; i += 7 {
		sender(f.Hosts[i], mkUDP(t, f.HostAddr(i), f.OutsideAddr(1), []byte{0xDD, 0}), 11*time.Millisecond)
	}

	// Run in chunks (partial epochs), then drain in-flight packets.
	sim.RunFor(total / 3)
	sim.RunFor(total / 3)
	sim.Run()

	res.delivered = sim.Delivered()
	res.forwarded = sim.Forwarded()
	res.dropped = sim.Dropped()
	res.events = sim.EventsProcessed()
	res.hostTallies = delivered.Total() + upstream
	return res
}

// TestParallelTraceEquivalence is the serial-vs-parallel property test:
// on random sharded fan-outs with random traffic, the ordered TraceEvent
// stream and every engine counter must be identical at workers=1 and
// workers=N.
func TestParallelTraceEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			serial := runParWorld(t, seed, 1)
			if serial.delivered == 0 || serial.hostTallies == 0 {
				t.Fatalf("degenerate world: delivered=%d tallies=%d", serial.delivered, serial.hostTallies)
			}
			for _, workers := range []int{3, 4} {
				par := runParWorld(t, seed, workers)
				if par.delivered != serial.delivered || par.forwarded != serial.forwarded ||
					par.dropped != serial.dropped || par.events != serial.events ||
					par.hostTallies != serial.hostTallies {
					t.Fatalf("workers=%d counters diverged: serial={d:%d f:%d dr:%d ev:%d tl:%d} parallel={d:%d f:%d dr:%d ev:%d tl:%d}",
						workers,
						serial.delivered, serial.forwarded, serial.dropped, serial.events, serial.hostTallies,
						par.delivered, par.forwarded, par.dropped, par.events, par.hostTallies)
				}
				if len(par.trace) != len(serial.trace) {
					t.Fatalf("workers=%d trace length %d, serial %d", workers, len(par.trace), len(serial.trace))
				}
				for i := range serial.trace {
					a, b := serial.trace[i], par.trace[i]
					if a.kind != b.kind || a.at != b.at || a.node != b.node || !bytes.Equal(a.pkt, b.pkt) {
						t.Fatalf("workers=%d trace[%d] diverged:\n serial  %v t=%d %s %x\n parallel %v t=%d %s %x",
							workers, i, a.kind, a.at, a.node, a.pkt, b.kind, b.at, b.node, b.pkt)
					}
				}
			}
		})
	}
}

// TestParallelReplayIdentical pins that two runs at the same worker
// count are bit-identical too (the -seed discipline, sharded).
func TestParallelReplayIdentical(t *testing.T) {
	a := runParWorld(t, 9, 4)
	b := runParWorld(t, 9, 4)
	if a.events != b.events || a.delivered != b.delivered || len(a.trace) != len(b.trace) {
		t.Fatalf("replay diverged: events %d/%d delivered %d/%d trace %d/%d",
			a.events, b.events, a.delivered, b.delivered, len(a.trace), len(b.trace))
	}
}

// TestShardRNGIndependence pins the per-shard RNG derivation: shard 0
// keeps the root seed's stream (single-shard compatibility) and other
// shards draw from independent splitmix-derived streams that do not
// depend on the worker count.
func TestShardRNGIndependence(t *testing.T) {
	mk := func(workers int) (*Simulator, *Fanout) {
		sim := NewSimulator(simStart, 5)
		f, err := BuildFanout(sim, FanoutSpec{Hosts: 40, HostsPerEdge: 16, ShardSubtrees: true})
		if err != nil {
			t.Fatal(err)
		}
		sim.SetWorkers(workers)
		return sim, f
	}
	sim, f := mk(1)
	sim2, f2 := mk(4)
	want := rand.New(rand.NewSource(5)).Int63()
	if got := sim.Rand().Int63(); got != want {
		t.Error("shard 0 stream diverged from the root seed's (pre-shard compatibility)")
	}
	if got := sim2.Rand().Int63(); got != want {
		t.Error("shard 0 stream depends on worker count")
	}
	if f.Hosts[0].Rand().Int63() != f2.Hosts[0].Rand().Int63() {
		t.Error("host shard stream depends on worker count")
	}
	if f.Hosts[0].ShardID() == f.Hosts[len(f.Hosts)-1].ShardID() {
		t.Fatal("expected hosts across multiple shards")
	}
	if f.Hosts[0].Rand() == f.Hosts[len(f.Hosts)-1].Rand() {
		t.Error("distinct shards share one RNG (the PR-4 determinism hazard)")
	}
	if f.Transit.ShardID() != 0 || f.Border.ShardID() != 1 {
		t.Errorf("core shard plan: transit=%d border=%d, want 0/1", f.Transit.ShardID(), f.Border.ShardID())
	}
	_ = f2
}
