package netem

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/wire"
)

var simStart = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// mkUDP builds a serialized IPv4/UDP packet for tests.
func mkUDP(t testing.TB, src, dst netip.Addr, payload []byte) []byte {
	t.Helper()
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: wire.MaxTTL, Protocol: wire.ProtoUDP, Src: src, Dst: dst},
		&wire.UDP{SrcPort: 1000, DstPort: 2000, PseudoSrc: src, PseudoDst: dst},
	)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestScheduleOrdering(t *testing.T) {
	s := NewSimulator(simStart, 1)
	var order []int
	s.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	s.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(1*time.Millisecond, func() { order = append(order, 11) }) // same time: FIFO by seq
	s.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	s.Run()
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := s.Now(); !got.Equal(simStart.Add(3 * time.Millisecond)) {
		t.Errorf("clock = %v", got)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := NewSimulator(simStart, 1)
	fired := false
	s.Schedule(10*time.Millisecond, func() { fired = true })
	s.RunUntil(simStart.Add(5 * time.Millisecond))
	if fired {
		t.Error("event fired early")
	}
	if !s.Now().Equal(simStart.Add(5 * time.Millisecond)) {
		t.Errorf("clock = %v", s.Now())
	}
	s.RunFor(5 * time.Millisecond)
	if !fired {
		t.Error("event did not fire at its time")
	}
}

func TestDirectLinkDelivery(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "ispA", addr("10.0.0.1"))
	b := s.MustAddNode("b", "ispB", addr("10.0.0.2"))
	s.Connect(a, b, LinkConfig{Delay: 5 * time.Millisecond})
	s.BuildRoutes()

	var deliveredAt time.Time
	var got []byte
	// Handlers get a view of the pooled buffer: clone to keep it.
	b.SetHandler(func(now time.Time, pkt []byte) { deliveredAt = now; got = bytes.Clone(pkt) })

	pkt := mkUDP(t, addr("10.0.0.1"), addr("10.0.0.2"), []byte("hi"))
	if err := a.Send(pkt); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if want := simStart.Add(5 * time.Millisecond); !deliveredAt.Equal(want) {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
	if s.Delivered() != 1 {
		t.Errorf("Delivered() = %d", s.Delivered())
	}
}

func TestSerializationDelay(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	b := s.MustAddNode("b", "", addr("10.0.0.2"))
	// 1 Mbps: a 125-byte packet takes exactly 1ms to serialize.
	s.Connect(a, b, LinkConfig{Delay: 2 * time.Millisecond, RateBps: 1e6})
	s.BuildRoutes()

	var deliveredAt time.Time
	b.SetHandler(func(now time.Time, pkt []byte) { deliveredAt = now })

	payload := make([]byte, 125-wire.IPv4HeaderLen-wire.UDPHeaderLen)
	pkt := mkUDP(t, addr("10.0.0.1"), addr("10.0.0.2"), payload)
	if len(pkt) != 125 {
		t.Fatalf("test packet = %d bytes", len(pkt))
	}
	if err := a.Send(pkt); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if want := simStart.Add(3 * time.Millisecond); !deliveredAt.Equal(want) {
		t.Errorf("delivered at %v, want %v (1ms serialize + 2ms prop)", deliveredAt, want)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	b := s.MustAddNode("b", "", addr("10.0.0.2"))
	// Slow link, queue of 2.
	l := s.Connect(a, b, LinkConfig{Delay: time.Millisecond, RateBps: 1e4, QueueLen: 2})
	s.BuildRoutes()

	n := 0
	b.SetHandler(func(time.Time, []byte) { n++ })
	pkt := mkUDP(t, addr("10.0.0.1"), addr("10.0.0.2"), make([]byte, 100))
	// Burst of 6: 1 transmitting + 2 queued accepted; 3 dropped.
	for i := 0; i < 6; i++ {
		_ = a.Send(pkt)
	}
	s.Run()
	if n != 3 {
		t.Errorf("delivered %d, want 3", n)
	}
	_, dropped := l.Stats(a)
	if dropped != 3 {
		t.Errorf("dropped = %d, want 3", dropped)
	}
	if s.Dropped() != 3 {
		t.Errorf("global dropped = %d", s.Dropped())
	}
}

func TestMultiHopRoutingAndTTL(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	r := s.MustAddNode("r", "", addr("10.0.0.254"))
	b := s.MustAddNode("b", "", addr("10.0.1.1"))
	s.Connect(a, r, LinkConfig{Delay: time.Millisecond})
	s.Connect(r, b, LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()

	var got []byte
	b.SetHandler(func(_ time.Time, pkt []byte) { got = bytes.Clone(pkt) })
	if err := a.Send(mkUDP(t, addr("10.0.0.1"), addr("10.0.1.1"), []byte("x"))); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got == nil {
		t.Fatal("not delivered across two hops")
	}
	var ip wire.IPv4
	if err := ip.DecodeFromBytes(got); err != nil {
		t.Fatalf("delivered packet corrupt: %v", err)
	}
	if ip.TTL != wire.MaxTTL-1 {
		t.Errorf("TTL = %d, want %d (one forwarding hop)", ip.TTL, wire.MaxTTL-1)
	}
}

func TestTTLExhaustion(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	r := s.MustAddNode("r", "", addr("10.0.0.254"))
	b := s.MustAddNode("b", "", addr("10.0.1.1"))
	s.Connect(a, r, LinkConfig{Delay: time.Millisecond})
	s.Connect(r, b, LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()

	delivered := false
	b.SetHandler(func(time.Time, []byte) { delivered = true })

	buf := wire.NewSerializeBuffer(28, 0)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 1, Protocol: wire.ProtoUDP, Src: addr("10.0.0.1"), Dst: addr("10.0.1.1")},
		&wire.UDP{SrcPort: 1, DstPort: 2},
	); err != nil {
		t.Fatal(err)
	}
	_ = a.Send(buf.Bytes())
	s.Run()
	if delivered {
		t.Error("TTL=1 packet should die at the router")
	}
	if s.Dropped() != 1 {
		t.Errorf("dropped = %d", s.Dropped())
	}
}

func TestNoRoute(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	s.BuildRoutes()
	err := a.Send(mkUDP(t, addr("10.0.0.1"), addr("10.99.0.1"), nil))
	if err != ErrNoRoute {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestAnycastNearestMember(t *testing.T) {
	s := NewSimulator(simStart, 1)
	src := s.MustAddNode("src", "", addr("10.0.0.1"))
	near := s.MustAddNode("near", "", addr("10.1.0.1"))
	far := s.MustAddNode("far", "", addr("10.2.0.1"))
	s.Connect(src, near, LinkConfig{Delay: 1 * time.Millisecond})
	s.Connect(src, far, LinkConfig{Delay: 50 * time.Millisecond})
	s.Connect(near, far, LinkConfig{Delay: 1 * time.Millisecond})
	any := addr("10.255.0.1")
	s.AddAnycast(any, near, far)
	s.BuildRoutes()

	var hit string
	near.SetHandler(func(time.Time, []byte) { hit = "near" })
	far.SetHandler(func(time.Time, []byte) { hit = "far" })
	if err := src.Send(mkUDP(t, addr("10.0.0.1"), any, nil)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if hit != "near" {
		t.Errorf("anycast delivered to %q, want \"near\"", hit)
	}
	if got := s.AnycastMembers(any); len(got) != 2 {
		t.Errorf("AnycastMembers = %d", len(got))
	}
}

func TestTransitHookDrop(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	r := s.MustAddNode("r", "evilISP", addr("10.0.0.254"))
	b := s.MustAddNode("b", "", addr("10.0.1.1"))
	s.Connect(a, r, LinkConfig{Delay: time.Millisecond})
	s.Connect(r, b, LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()

	r.AddTransitHook(func(_ time.Time, _ *Node, pkt []byte) Verdict {
		return Verdict{Drop: true}
	})
	delivered := false
	b.SetHandler(func(time.Time, []byte) { delivered = true })
	_ = a.Send(mkUDP(t, addr("10.0.0.1"), addr("10.0.1.1"), nil))
	s.Run()
	if delivered {
		t.Error("policy-dropped packet was delivered")
	}
}

func TestTransitHookDelay(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	r := s.MustAddNode("r", "evilISP", addr("10.0.0.254"))
	b := s.MustAddNode("b", "", addr("10.0.1.1"))
	s.Connect(a, r, LinkConfig{Delay: time.Millisecond})
	s.Connect(r, b, LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()

	r.AddTransitHook(func(time.Time, *Node, []byte) Verdict {
		return Verdict{Delay: 100 * time.Millisecond}
	})
	var at time.Time
	b.SetHandler(func(now time.Time, _ []byte) { at = now })
	_ = a.Send(mkUDP(t, addr("10.0.0.1"), addr("10.0.1.1"), nil))
	s.Run()
	want := simStart.Add(102 * time.Millisecond)
	if !at.Equal(want) {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestTransitHookRemarkDSCP(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	r := s.MustAddNode("r", "evilISP", addr("10.0.0.254"))
	b := s.MustAddNode("b", "", addr("10.0.1.1"))
	s.Connect(a, r, LinkConfig{Delay: time.Millisecond})
	s.Connect(r, b, LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()

	low := uint8(8) // CS1 "lower effort"
	r.AddTransitHook(func(time.Time, *Node, []byte) Verdict {
		return Verdict{DSCP: &low}
	})
	var got []byte
	b.SetHandler(func(_ time.Time, pkt []byte) { got = bytes.Clone(pkt) })
	_ = a.Send(mkUDP(t, addr("10.0.0.1"), addr("10.0.1.1"), nil))
	s.Run()
	if got == nil {
		t.Fatal("not delivered")
	}
	var ip wire.IPv4
	if err := ip.DecodeFromBytes(got); err != nil {
		t.Fatalf("checksum must be repaired after remark: %v", err)
	}
	if ip.DSCP() != low {
		t.Errorf("DSCP = %d, want %d", ip.DSCP(), low)
	}
}

func TestTraceEvents(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	r := s.MustAddNode("r", "", addr("10.0.0.254"))
	b := s.MustAddNode("b", "", addr("10.0.1.1"))
	s.Connect(a, r, LinkConfig{Delay: time.Millisecond})
	s.Connect(r, b, LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()

	counts := map[TraceKind]int{}
	s.Trace(func(ev TraceEvent) { counts[ev.Kind]++ })
	b.SetHandler(func(time.Time, []byte) {})
	_ = a.Send(mkUDP(t, addr("10.0.0.1"), addr("10.0.1.1"), nil))
	s.Run()
	if counts[TraceSend] != 1 || counts[TraceForward] != 1 || counts[TraceDeliver] != 1 {
		t.Errorf("trace counts = %v", counts)
	}
}

func TestDuplicateNodeAndAddr(t *testing.T) {
	s := NewSimulator(simStart, 1)
	s.MustAddNode("a", "", addr("10.0.0.1"))
	if _, err := s.AddNode("a", "", addr("10.0.0.9")); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := s.AddNode("b", "", addr("10.0.0.1")); err == nil {
		t.Error("duplicate address accepted")
	}
}

func TestAddRemoveAddr(t *testing.T) {
	s := NewSimulator(simStart, 1)
	n := s.MustAddNode("n", "", addr("10.0.0.1"))
	dyn := addr("10.0.0.77")
	if err := n.AddAddr(dyn); err != nil {
		t.Fatal(err)
	}
	if s.NodeByAddr(dyn) != n || !n.HasAddr(dyn) {
		t.Error("dynamic address not registered")
	}
	if err := n.AddAddr(dyn); err == nil {
		t.Error("re-adding same address should fail")
	}
	n.RemoveAddr(dyn)
	if s.NodeByAddr(dyn) != nil || n.HasAddr(dyn) {
		t.Error("dynamic address not released")
	}
}

func TestInstallPrefixRoutes(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	r := s.MustAddNode("r", "", addr("10.0.0.254"))
	b := s.MustAddNode("b", "", addr("10.1.0.1"))
	s.Connect(a, r, LinkConfig{Delay: time.Millisecond})
	s.Connect(r, b, LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()
	if err := s.InstallPrefixRoutes(netip.MustParsePrefix("10.1.0.0/16")); err != nil {
		t.Fatal(err)
	}
	// b gains a *new* address covered by the prefix; a can reach it
	// without BuildRoutes.
	dyn := addr("10.1.0.200")
	if err := b.AddAddr(dyn); err != nil {
		t.Fatal(err)
	}
	got := false
	b.SetHandler(func(time.Time, []byte) { got = true })
	if err := a.Send(mkUDP(t, addr("10.0.0.1"), dyn, nil)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !got {
		t.Error("prefix-routed packet not delivered")
	}
	if err := s.InstallPrefixRoutes(netip.MustParsePrefix("172.16.0.0/12")); err == nil {
		t.Error("prefix with no members should error")
	}
}

func TestAsymmetricLink(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	b := s.MustAddNode("b", "", addr("10.0.0.2"))
	s.ConnectAsym(a, b,
		LinkConfig{Delay: 1 * time.Millisecond},
		LinkConfig{Delay: 30 * time.Millisecond})
	s.BuildRoutes()

	var atB, atA time.Time
	b.SetHandler(func(now time.Time, pkt []byte) {
		atB = now
		_ = b.Send(mkUDP(t, addr("10.0.0.2"), addr("10.0.0.1"), nil))
	})
	a.SetHandler(func(now time.Time, _ []byte) { atA = now })
	_ = a.Send(mkUDP(t, addr("10.0.0.1"), addr("10.0.0.2"), nil))
	s.Run()
	if !atB.Equal(simStart.Add(time.Millisecond)) {
		t.Errorf("forward at %v", atB)
	}
	if !atA.Equal(simStart.Add(31 * time.Millisecond)) {
		t.Errorf("reverse at %v, want +31ms", atA)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		s := NewSimulator(simStart, 42)
		a := s.MustAddNode("a", "", addr("10.0.0.1"))
		b := s.MustAddNode("b", "", addr("10.0.0.2"))
		s.Connect(a, b, LinkConfig{Delay: time.Millisecond, RateBps: 1e6, QueueLen: 4})
		s.BuildRoutes()
		var times []time.Duration
		b.SetHandler(func(now time.Time, _ []byte) { times = append(times, now.Sub(simStart)) })
		for i := 0; i < 3; i++ {
			jitter := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
			s.Schedule(jitter, func() {
				_ = a.Send(mkUDP(t, addr("10.0.0.1"), addr("10.0.0.2"), make([]byte, 64)))
			})
		}
		s.Run()
		return times
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("replay diverged at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestFIFOQueueBasics(t *testing.T) {
	q := NewFIFOQueue(2)
	p1 := &QueuedPacket{Size: 1}
	p2 := &QueuedPacket{Size: 2}
	p3 := &QueuedPacket{Size: 3}
	if !q.Enqueue(p1) || !q.Enqueue(p2) {
		t.Fatal("enqueue within capacity failed")
	}
	if q.Enqueue(p3) {
		t.Error("enqueue beyond capacity succeeded")
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
	if q.Dequeue() != p1 || q.Dequeue() != p2 || q.Dequeue() != nil {
		t.Error("FIFO order violated")
	}
}

func TestSendMalformed(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	if err := a.Send([]byte{1, 2, 3}); err != ErrMalformedIPv4 {
		t.Errorf("err = %v", err)
	}
}
