package aesutil

import (
	"bytes"
	"crypto/aes"
	mathrand "math/rand"
	"net/netip"
	"testing"
)

// TestExpandedKeyMatchesStdlib cross-checks the software AES against
// crypto/aes over many random keys and blocks, including re-keying the
// same ExpandedKey (the hot-path usage pattern).
func TestExpandedKeyMatchesStdlib(t *testing.T) {
	rng := mathrand.New(mathrand.NewSource(42))
	var ek ExpandedKey
	for i := 0; i < 2000; i++ {
		var key Key
		var pt [16]byte
		rng.Read(key[:])
		rng.Read(pt[:])

		ref, err := aes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		var want, got [16]byte
		ref.Encrypt(want[:], pt[:])

		ek.Expand(key)
		ek.EncryptBlock(&got, &pt)
		if want != got {
			t.Fatalf("iter %d: encrypt mismatch\nkey  %x\npt   %x\nwant %x\ngot  %x", i, key, pt, want, got)
		}

		var back [16]byte
		ek.DecryptBlock(&back, &got)
		if back != pt {
			t.Fatalf("iter %d: decrypt(encrypt(pt)) != pt: %x vs %x", i, back, pt)
		}
		ref.Decrypt(back[:], want[:])
		var softBack [16]byte
		ek.DecryptBlock(&softBack, &want)
		if back != softBack {
			t.Fatalf("iter %d: decrypt mismatch vs stdlib", i)
		}
	}
}

// TestExpandedKeyFIPSVector checks the FIPS-197 appendix C.1 vector.
func TestExpandedKeyFIPSVector(t *testing.T) {
	key := Key{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	pt := [16]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	want := [16]byte{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}
	var ek ExpandedKey
	ek.Expand(key)
	var got [16]byte
	ek.EncryptBlock(&got, &pt)
	if got != want {
		t.Fatalf("FIPS-197 C.1: got %x want %x", got, want)
	}
	var back [16]byte
	ek.DecryptBlock(&back, &got)
	if back != pt {
		t.Fatalf("FIPS-197 C.1 decrypt: got %x want %x", back, pt)
	}
}

// TestAddrBlockXMatchesSlowPath verifies the zero-alloc address block
// operations agree with EncryptAddr/DecryptAddr in both directions.
func TestAddrBlockXMatchesSlowPath(t *testing.T) {
	rng := mathrand.New(mathrand.NewSource(7))
	var ek ExpandedKey
	for i := 0; i < 500; i++ {
		var key Key
		var salt [8]byte
		var a4 [4]byte
		rng.Read(key[:])
		rng.Read(salt[:])
		rng.Read(a4[:])
		addr := netip.AddrFrom4(a4)

		slow, err := EncryptAddr(key, addr, salt)
		if err != nil {
			t.Fatal(err)
		}
		ek.Expand(key)
		fast, ok := ek.EncryptAddrX(addr, salt)
		if !ok || !bytes.Equal(slow[:], fast[:]) {
			t.Fatalf("iter %d: EncryptAddrX mismatch: %x vs %x", i, slow, fast)
		}
		gotAddr, gotSalt, ok := ek.DecryptAddrX(fast)
		if !ok || gotAddr != addr || gotSalt != salt {
			t.Fatalf("iter %d: DecryptAddrX round trip failed: %v %x ok=%v", i, gotAddr, gotSalt, ok)
		}
		// Wrong key must fail the check the same way DecryptAddr does.
		key[0] ^= 1
		ek.Expand(key)
		if _, _, ok := ek.DecryptAddrX(fast); ok {
			t.Fatalf("iter %d: DecryptAddrX accepted a block under the wrong key", i)
		}
	}
	if _, ok := ek.EncryptAddrX(netip.MustParseAddr("::1"), [8]byte{}); ok {
		t.Fatal("EncryptAddrX accepted an IPv6 address")
	}
}

// TestCBCMACScratchMatchesCBCMAC verifies the cached-cipher MAC computes
// the identical function across lengths spanning multiple blocks.
func TestCBCMACScratchMatchesCBCMAC(t *testing.T) {
	rng := mathrand.New(mathrand.NewSource(99))
	var key Key
	rng.Read(key[:])
	b := NewBlock(key)
	var w MACScratch
	for n := 0; n <= 64; n++ {
		data := make([]byte, n)
		rng.Read(data)
		want := CBCMAC(key, data)
		got := b.CBCMACScratch(&w, data)
		if want != got {
			t.Fatalf("len %d: CBCMACScratch mismatch", n)
		}
		// Scratch must be reusable.
		if got2 := b.CBCMACScratch(&w, data); got2 != want {
			t.Fatalf("len %d: CBCMACScratch not stable across reuse", n)
		}
	}
}

func TestExpandedKeyZeroAlloc(t *testing.T) {
	var key Key
	var ek ExpandedKey
	addr := netip.MustParseAddr("10.10.0.5")
	n := testing.AllocsPerRun(200, func() {
		key[0]++
		ek.Expand(key)
		ct, _ := ek.EncryptAddrX(addr, [8]byte{1})
		if _, _, ok := ek.DecryptAddrX(ct); !ok {
			t.Fatal("round trip failed")
		}
	})
	if n != 0 {
		t.Fatalf("ExpandedKey path allocates %v per op, want 0", n)
	}
}

func BenchmarkExpandedKeyRekeyBlock(b *testing.B) {
	var key Key
	var ek ExpandedKey
	var blk [16]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		ek.Expand(key)
		ek.EncryptBlock(&blk, &blk)
	}
}
