package aesutil

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	k1 = Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	k2 = Key{16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
)

func TestCBCMACDeterministic(t *testing.T) {
	m1 := CBCMAC(k1, []byte("hello"))
	m2 := CBCMAC(k1, []byte("hello"))
	if m1 != m2 {
		t.Error("CBC-MAC must be deterministic")
	}
}

func TestCBCMACKeyAndDataSensitivity(t *testing.T) {
	base := CBCMAC(k1, []byte("hello"))
	if CBCMAC(k2, []byte("hello")) == base {
		t.Error("different key, same MAC")
	}
	if CBCMAC(k1, []byte("hellp")) == base {
		t.Error("different data, same MAC")
	}
	if CBCMAC(k1, []byte("hell")) == base {
		t.Error("prefix data, same MAC")
	}
}

func TestCBCMACLengthFraming(t *testing.T) {
	// Same bytes split differently must not collide thanks to the length
	// prefix: MAC("ab") vs MAC("ab\x00...") padded block ambiguity.
	a := CBCMAC(k1, []byte{0xab})
	b := CBCMAC(k1, append([]byte{0xab}, make([]byte, 15)...))
	if a == b {
		t.Error("padding ambiguity: single byte vs zero-extended block collide")
	}
	if CBCMAC(k1, nil) == CBCMAC(k1, make([]byte, 16)) {
		t.Error("empty vs one zero block collide")
	}
}

func TestCBCMACMultiBlock(t *testing.T) {
	long := bytes.Repeat([]byte("0123456789abcdef"), 4)
	m := CBCMAC(k1, long)
	// Flip a bit in the middle block; MAC must change.
	long[20] ^= 0x80
	if CBCMAC(k1, long) == m {
		t.Error("middle-block bit flip not reflected in MAC")
	}
}

func TestDeriveKeyFraming(t *testing.T) {
	// ("ab","c") and ("a","bc") must differ (length framing).
	d1 := DeriveKey(k1, []byte("ab"), []byte("c"))
	d2 := DeriveKey(k1, []byte("a"), []byte("bc"))
	if d1 == d2 {
		t.Error("part-boundary ambiguity in DeriveKey")
	}
	// Deterministic.
	if DeriveKey(k1, []byte("ab"), []byte("c")) != d1 {
		t.Error("DeriveKey not deterministic")
	}
}

func TestAddrBlockRoundTrip(t *testing.T) {
	a := netip.MustParseAddr("203.0.113.77")
	salt := [8]byte{9, 8, 7, 6, 5, 4, 3, 2}
	ct, err := EncryptAddr(k1, a, salt)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSalt, err := DecryptAddr(k1, ct)
	if err != nil {
		t.Fatalf("DecryptAddr: %v", err)
	}
	if got != a || gotSalt != salt {
		t.Errorf("roundtrip = %v %v", got, gotSalt)
	}
}

func TestAddrBlockWrongKey(t *testing.T) {
	a := netip.MustParseAddr("10.0.0.1")
	ct, err := EncryptAddr(k1, a, [8]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecryptAddr(k2, ct); err != ErrCheckFailed {
		t.Errorf("wrong key: err = %v, want ErrCheckFailed", err)
	}
}

func TestAddrBlockCorruption(t *testing.T) {
	a := netip.MustParseAddr("10.0.0.1")
	ct, err := EncryptAddr(k1, a, [8]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	ct[0] ^= 0x01
	if _, _, err := DecryptAddr(k1, ct); err != ErrCheckFailed {
		t.Errorf("corrupted block: err = %v, want ErrCheckFailed", err)
	}
}

func TestAddrBlockSaltVariesCiphertext(t *testing.T) {
	a := netip.MustParseAddr("10.0.0.1")
	c1, err := EncryptAddr(k1, a, [8]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := EncryptAddr(k1, a, [8]byte{2})
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Error("same address with different salts must yield different ciphertexts")
	}
}

func TestEncryptAddrRejectsNonIPv4(t *testing.T) {
	if _, err := EncryptAddr(k1, netip.MustParseAddr("::1"), [8]byte{}); err == nil {
		t.Error("IPv6 address should be rejected")
	}
	if _, err := EncryptAddr(k1, netip.Addr{}, [8]byte{}); err == nil {
		t.Error("zero address should be rejected")
	}
}

func TestAddrBlockProperty(t *testing.T) {
	f := func(key [16]byte, raw [4]byte, salt [8]byte) bool {
		a := netip.AddrFrom4(raw)
		ct, err := EncryptAddr(Key(key), a, salt)
		if err != nil {
			return false
		}
		got, gotSalt, err := DecryptAddr(Key(key), ct)
		return err == nil && got == a && gotSalt == salt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCTRCryptRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	orig := bytes.Clone(data)
	nonce := [8]byte{1, 2, 3}
	CTRCrypt(k1, nonce, data)
	if bytes.Equal(data, orig) {
		t.Error("CTRCrypt left data unchanged")
	}
	CTRCrypt(k1, nonce, data)
	if !bytes.Equal(data, orig) {
		t.Error("CTR is not an involution with the same key+nonce")
	}
}

func TestCTRCryptNonceSensitivity(t *testing.T) {
	a := []byte("samesamesame")
	b := bytes.Clone(a)
	CTRCrypt(k1, [8]byte{1}, a)
	CTRCrypt(k1, [8]byte{2}, b)
	if bytes.Equal(a, b) {
		t.Error("different nonces must produce different keystreams")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(k1, k1) {
		t.Error("Equal(k1,k1) = false")
	}
	if Equal(k1, k2) {
		t.Error("Equal(k1,k2) = true")
	}
}

func BenchmarkCBCMAC(b *testing.B) {
	data := make([]byte, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CBCMAC(k1, data)
	}
}

func BenchmarkAddrEncrypt(b *testing.B) {
	a := netip.MustParseAddr("10.0.0.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncryptAddr(k1, a, [8]byte{byte(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddrDecrypt(b *testing.B) {
	a := netip.MustParseAddr("10.0.0.1")
	ct, err := EncryptAddr(k1, a, [8]byte{7})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecryptAddr(k1, ct); err != nil {
			b.Fatal(err)
		}
	}
}
