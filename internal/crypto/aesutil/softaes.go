// Software AES-128 with a re-keyable, caller-owned key schedule.
//
// The neutralizer derives a fresh session key Ks for every data packet, so
// the hot path needs to "re-key AES" once per packet. crypto/aes cannot do
// that without allocating (aes.NewCipher heap-allocates its cipher state
// on every call), which is fatal to a zero-allocation data plane. This
// file implements FIPS-197 AES-128 with the expanded key schedule stored
// in a caller-owned ExpandedKey value: Expand writes the round keys in
// place and the block operations touch nothing but their arguments, so a
// per-worker scratch can re-key for every packet with zero allocations.
//
// The implementation is the classic four-T-table construction (the same
// shape as crypto/aes's generic fallback). Like that fallback it is not
// constant-time with respect to data-dependent table indices; the
// long-term master-key KDF stays on crypto/aes (see Block), and the paper
// already treats session keys as short-lived per-flow secrets.
package aesutil

import "net/netip"

// ExpandedKey is a caller-owned AES-128 key schedule. Expand may be called
// any number of times to re-key; the zero value is NOT usable until the
// first Expand. The decryption schedule is derived lazily on the first
// DecryptBlock after a re-key, so encrypt-only users (the return path)
// pay half the expansion cost.
type ExpandedKey struct {
	enc    [44]uint32
	dec    [44]uint32
	hasDec bool
}

const aesRounds = 10 // AES-128

var (
	sbox  [256]byte
	isbox [256]byte
	// Encryption tables: teN[x] is the MixColumns contribution of
	// sbox[x] in byte position N.
	te0, te1, te2, te3 [256]uint32
	// Decryption tables: tdN[x] is the InvMixColumns contribution of
	// isbox[x] in byte position N.
	td0, td1, td2, td3 [256]uint32
	rcon               [11]uint32
)

// gmul multiplies a and b in GF(2^8) with the AES polynomial 0x11b.
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

func init() {
	// S-box: multiplicative inverse in GF(2^8) followed by the affine
	// transform (FIPS-197 §5.1.1), built by table search at init time.
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gmul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	for i := 0; i < 256; i++ {
		x := inv[i]
		s := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = s
		isbox[s] = byte(i)
	}
	for i := 0; i < 256; i++ {
		s := sbox[i]
		// Column (2s, s, s, 3s) for MixColumns.
		w := uint32(gmul(s, 2))<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(gmul(s, 3))
		te0[i] = w
		te1[i] = rotr32(w, 8)
		te2[i] = rotr32(w, 16)
		te3[i] = rotr32(w, 24)
		is := isbox[i]
		// Column (14is, 9is, 13is, 11is) for InvMixColumns.
		v := uint32(gmul(is, 14))<<24 | uint32(gmul(is, 9))<<16 | uint32(gmul(is, 13))<<8 | uint32(gmul(is, 11))
		td0[i] = v
		td1[i] = rotr32(v, 8)
		td2[i] = rotr32(v, 16)
		td3[i] = rotr32(v, 24)
	}
	rc := uint32(1)
	for i := 1; i < len(rcon); i++ {
		rcon[i] = rc << 24
		rc = uint32(gmul(byte(rc), 2))
	}
}

func rotl8(x byte, n uint) byte { return x<<n | x>>(8-n) }
func rotr32(x, n uint32) uint32 { return x>>n | x<<(32-n) }
func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// Expand (re)keys the schedule in place. It performs no allocation.
func (e *ExpandedKey) Expand(key Key) {
	enc := &e.enc
	for i := 0; i < 4; i++ {
		enc[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	for i := 4; i < 44; i++ {
		t := enc[i-1]
		if i%4 == 0 {
			t = subWord(t<<8|t>>24) ^ rcon[i/4]
		}
		enc[i] = enc[i-4] ^ t
	}
	e.hasDec = false
}

// expandDec derives the decryption schedule (equivalent inverse cipher):
// round-key groups in reverse order, InvMixColumns applied to the
// interior rounds. td0[sbox[b]] is exactly the InvMixColumns column of b.
func (e *ExpandedKey) expandDec() {
	enc, dec := &e.enc, &e.dec
	for i := 0; i <= aesRounds; i++ {
		ei := 4 * (aesRounds - i)
		for j := 0; j < 4; j++ {
			w := enc[ei+j]
			if i > 0 && i < aesRounds {
				w = td0[sbox[w>>24]] ^ td1[sbox[w>>16&0xff]] ^ td2[sbox[w>>8&0xff]] ^ td3[sbox[w&0xff]]
			}
			dec[4*i+j] = w
		}
	}
	e.hasDec = true
}

// EncryptBlock encrypts one 16-byte block (dst and src may alias).
func (e *ExpandedKey) EncryptBlock(dst, src *[16]byte) {
	rk := &e.enc
	s0 := uint32(src[0])<<24 | uint32(src[1])<<16 | uint32(src[2])<<8 | uint32(src[3])
	s1 := uint32(src[4])<<24 | uint32(src[5])<<16 | uint32(src[6])<<8 | uint32(src[7])
	s2 := uint32(src[8])<<24 | uint32(src[9])<<16 | uint32(src[10])<<8 | uint32(src[11])
	s3 := uint32(src[12])<<24 | uint32(src[13])<<16 | uint32(src[14])<<8 | uint32(src[15])
	s0 ^= rk[0]
	s1 ^= rk[1]
	s2 ^= rk[2]
	s3 ^= rk[3]
	var t0, t1, t2, t3 uint32
	k := 4
	for r := 1; r < aesRounds; r++ {
		t0 = te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ rk[k]
		t1 = te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ rk[k+1]
		t2 = te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ rk[k+2]
		t3 = te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
	t0 = uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	t1 = uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	t2 = uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	t3 = uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	t0 ^= rk[40]
	t1 ^= rk[41]
	t2 ^= rk[42]
	t3 ^= rk[43]
	putWord(dst, 0, t0)
	putWord(dst, 4, t1)
	putWord(dst, 8, t2)
	putWord(dst, 12, t3)
}

// DecryptBlock decrypts one 16-byte block (dst and src may alias).
func (e *ExpandedKey) DecryptBlock(dst, src *[16]byte) {
	if !e.hasDec {
		e.expandDec()
	}
	rk := &e.dec
	s0 := uint32(src[0])<<24 | uint32(src[1])<<16 | uint32(src[2])<<8 | uint32(src[3])
	s1 := uint32(src[4])<<24 | uint32(src[5])<<16 | uint32(src[6])<<8 | uint32(src[7])
	s2 := uint32(src[8])<<24 | uint32(src[9])<<16 | uint32(src[10])<<8 | uint32(src[11])
	s3 := uint32(src[12])<<24 | uint32(src[13])<<16 | uint32(src[14])<<8 | uint32(src[15])
	s0 ^= rk[0]
	s1 ^= rk[1]
	s2 ^= rk[2]
	s3 ^= rk[3]
	var t0, t1, t2, t3 uint32
	k := 4
	for r := 1; r < aesRounds; r++ {
		t0 = td0[s0>>24] ^ td1[s3>>16&0xff] ^ td2[s2>>8&0xff] ^ td3[s1&0xff] ^ rk[k]
		t1 = td0[s1>>24] ^ td1[s0>>16&0xff] ^ td2[s3>>8&0xff] ^ td3[s2&0xff] ^ rk[k+1]
		t2 = td0[s2>>24] ^ td1[s1>>16&0xff] ^ td2[s0>>8&0xff] ^ td3[s3&0xff] ^ rk[k+2]
		t3 = td0[s3>>24] ^ td1[s2>>16&0xff] ^ td2[s1>>8&0xff] ^ td3[s0&0xff] ^ rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	t0 = uint32(isbox[s0>>24])<<24 | uint32(isbox[s3>>16&0xff])<<16 | uint32(isbox[s2>>8&0xff])<<8 | uint32(isbox[s1&0xff])
	t1 = uint32(isbox[s1>>24])<<24 | uint32(isbox[s0>>16&0xff])<<16 | uint32(isbox[s3>>8&0xff])<<8 | uint32(isbox[s2&0xff])
	t2 = uint32(isbox[s2>>24])<<24 | uint32(isbox[s1>>16&0xff])<<16 | uint32(isbox[s0>>8&0xff])<<8 | uint32(isbox[s3&0xff])
	t3 = uint32(isbox[s3>>24])<<24 | uint32(isbox[s2>>16&0xff])<<16 | uint32(isbox[s1>>8&0xff])<<8 | uint32(isbox[s0&0xff])
	t0 ^= rk[40]
	t1 ^= rk[41]
	t2 ^= rk[42]
	t3 ^= rk[43]
	putWord(dst, 0, t0)
	putWord(dst, 4, t1)
	putWord(dst, 8, t2)
	putWord(dst, 12, t3)
}

func putWord(dst *[16]byte, i int, w uint32) {
	dst[i] = byte(w >> 24)
	dst[i+1] = byte(w >> 16)
	dst[i+2] = byte(w >> 8)
	dst[i+3] = byte(w)
}

// EncryptAddrX is EncryptAddr on a pre-expanded key: one AES block
// operation and no allocation. The expanded key must hold the session key
// Ks the block is bound to. ok is false when a is not IPv4.
func (e *ExpandedKey) EncryptAddrX(a netip.Addr, salt [8]byte) (ct AddrBlock, ok bool) {
	if !a.Is4() {
		return AddrBlock{}, false
	}
	var pt AddrBlock
	a4 := a.As4()
	copy(pt[0:4], a4[:])
	copy(pt[4:12], salt[:])
	copy(pt[12:16], addrBlockMagic[:])
	e.EncryptBlock((*[16]byte)(&ct), (*[16]byte)(&pt))
	return ct, true
}

// DecryptAddrX is DecryptAddr on a pre-expanded key: one AES block
// operation and no allocation. ok is false when the check value mismatches
// (wrong key, forged nonce, or corrupted block).
func (e *ExpandedKey) DecryptAddrX(ct AddrBlock) (a netip.Addr, salt [8]byte, ok bool) {
	var pt AddrBlock
	e.DecryptBlock((*[16]byte)(&pt), (*[16]byte)(&ct))
	// Branch-free magic compare without crypto/subtle's slice interface
	// (which would let pt escape to the heap).
	var d byte
	for i := 0; i < 4; i++ {
		d |= pt[12+i] ^ addrBlockMagic[i]
	}
	if d != 0 {
		return netip.Addr{}, [8]byte{}, false
	}
	copy(salt[:], pt[4:12])
	return netip.AddrFrom4([4]byte(pt[0:4])), salt, true
}
