// Package aesutil provides the symmetric primitives of the neutralizer
// data path, mirroring the paper's implementation choice of "128-bit AES
// for both hashing and encryption/decryption":
//
//   - a CBC-MAC keyed hash used as the key-derivation function
//     Ks = hash(KM, nonce, srcIP);
//   - single-block encryption of the hidden address field with a
//     per-packet salt and an embedded check value, so each data packet
//     costs exactly one AES block operation at the neutralizer;
//   - AES-CTR payload encryption for the end-to-end black box.
package aesutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// BlockSize is the AES block size in bytes.
const BlockSize = aes.BlockSize

// Key is a 128-bit symmetric key.
type Key [KeySize]byte

// Errors returned by this package.
var (
	ErrBadBlockSize = errors.New("aesutil: ciphertext is not one AES block")
	ErrCheckFailed  = errors.New("aesutil: address block check value mismatch")
)

// addrBlockMagic is the known plaintext embedded in every address block.
// A decryption under the wrong key yields an effectively random block, so
// the magic mismatches with probability 1 - 2^-32.
var addrBlockMagic = [4]byte{'n', 'e', 'u', 't'}

// CBCMAC computes the AES-128 CBC-MAC of data under key, with zero IV and
// a length prefix. The length prefix (rather than raw CBC-MAC) closes the
// classic variable-length extension weakness; all users of this function
// MAC short, structured inputs.
func CBCMAC(key Key, data []byte) Key {
	var w MACScratch
	return NewBlock(key).CBCMACScratch(&w, data)
}

// DeriveKey computes a keyed hash over the given parts with unambiguous
// framing (each part is length-prefixed). This is the paper's
// Ks = hash(KM, nonce, srcIP) with KM as the MAC key.
func DeriveKey(master Key, parts ...[]byte) Key {
	size := 0
	for _, p := range parts {
		size += 2 + len(p)
	}
	buf := make([]byte, 0, size)
	for _, p := range parts {
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(p)))
		buf = append(buf, l[:]...)
		buf = append(buf, p...)
	}
	return CBCMAC(master, buf)
}

// AddrBlock is the 16-byte plaintext layout of the hidden-address field:
//
//	bytes 0..3   IPv4 address being hidden
//	bytes 4..11  per-packet salt (keeps equal addresses from producing
//	             equal ciphertexts across packets)
//	bytes 12..15 check value (known magic verified on decryption)
type AddrBlock [BlockSize]byte

// EncryptAddr encrypts addr into a single AES block under key using the
// given per-packet salt. One AES operation.
func EncryptAddr(key Key, a netip.Addr, salt [8]byte) (AddrBlock, error) {
	if !a.Is4() {
		return AddrBlock{}, fmt.Errorf("aesutil: address %v is not IPv4", a)
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return AddrBlock{}, err
	}
	var pt AddrBlock
	a4 := a.As4()
	copy(pt[0:4], a4[:])
	copy(pt[4:12], salt[:])
	copy(pt[12:16], addrBlockMagic[:])
	var ct AddrBlock
	block.Encrypt(ct[:], pt[:])
	return ct, nil
}

// DecryptAddr reverses EncryptAddr and validates the check value. One AES
// operation. A failed check means the wrong key was used (e.g. a forged or
// stale nonce) or the block was corrupted.
func DecryptAddr(key Key, ct AddrBlock) (netip.Addr, [8]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return netip.Addr{}, [8]byte{}, err
	}
	var pt AddrBlock
	block.Decrypt(pt[:], ct[:])
	if subtle.ConstantTimeCompare(pt[12:16], addrBlockMagic[:]) != 1 {
		return netip.Addr{}, [8]byte{}, ErrCheckFailed
	}
	var salt [8]byte
	copy(salt[:], pt[4:12])
	return netip.AddrFrom4([4]byte(pt[0:4])), salt, nil
}

// CTRCrypt encrypts or decrypts data in place with AES-CTR under key and
// a 16-byte IV derived from the caller-supplied 8-byte nonce (the same
// operation in both directions).
func CTRCrypt(key Key, nonce [8]byte, data []byte) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(fmt.Sprintf("aesutil: %v", err))
	}
	var iv [BlockSize]byte
	copy(iv[:8], nonce[:])
	cipher.NewCTR(block, iv[:]).XORKeyStream(data, data)
}

// Equal compares two keys in constant time.
func Equal(a, b Key) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// Block wraps a pre-expanded crypto/aes cipher so long-lived keys (the
// per-epoch master keys) pay aes.NewCipher's key expansion and allocation
// once instead of per packet. The zero value is not usable.
type Block struct {
	c cipher.Block
}

// NewBlock expands key once. Unlike per-packet session keys, a master key
// lives for an epoch, so this allocation is amortized to nothing.
func NewBlock(key Key) Block {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes, which the Key
		// type rules out.
		panic(fmt.Sprintf("aesutil: %v", err))
	}
	return Block{c: block}
}

// Valid reports whether the block has been initialized.
func (b Block) Valid() bool { return b.c != nil }

// MACScratch holds the working state of a CBCMACScratch computation.
// Passing buffers through the cipher.Block interface makes them escape to
// the heap, so they must live in reusable, caller-owned storage for the
// computation to be allocation-free. One MACScratch per worker.
type MACScratch struct {
	mac   [BlockSize]byte
	chunk [BlockSize]byte
}

// CBCMACScratch computes the same function as CBCMAC under the wrapped
// key, with all working state in w: zero allocations and no per-call key
// expansion. data must also live in caller-amortized storage for the call
// to be allocation-free.
func (b Block) CBCMACScratch(w *MACScratch, data []byte) Key {
	mac := w.mac[:]
	for i := 8; i < BlockSize; i++ {
		mac[i] = 0
	}
	binary.BigEndian.PutUint64(mac[:8], uint64(len(data)))
	b.c.Encrypt(mac, mac)
	for len(data) > 0 {
		n := copy(w.chunk[:], data)
		for i := n; i < BlockSize; i++ {
			w.chunk[i] = 0
		}
		for i := 0; i < BlockSize; i++ {
			mac[i] ^= w.chunk[i]
		}
		b.c.Encrypt(mac, mac)
		data = data[n:]
	}
	return Key(w.mac)
}
