// Package lightrsa implements the short, low-exponent RSA used by the
// neutralizer's key-setup protocol.
//
// The paper's efficiency argument hinges on an asymmetry: the source
// generates a one-time short RSA key pair (e.g. 512 bits) and performs the
// slow decryption, while the neutralizer performs only an encryption with
// public exponent 3 — roughly two modular multiplications. A 512-bit key
// is weak (the paper equates it to a 56-bit symmetric key), which the
// protocol tolerates by using each key once and replacing the symmetric
// key it protected within two round-trip times.
//
// SECURITY: this is a paper-faithful artifact, NOT a recommendation.
// Textbook/short RSA with ad-hoc padding must never be used to protect
// real data. The package exists to reproduce the published design and its
// performance characteristics.
package lightrsa

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// DefaultBits is the modulus size the paper evaluates (512-bit one-time keys).
const DefaultBits = 512

// PublicExponent is fixed at 3, the cheapest common RSA exponent: an
// encryption costs one squaring plus one multiplication.
const PublicExponent = 3

// Errors returned by this package.
var (
	ErrMessageTooLong = errors.New("lightrsa: message too long for modulus")
	ErrDecryption     = errors.New("lightrsa: decryption error")
	ErrKeyTooSmall    = errors.New("lightrsa: modulus too small")
	ErrBadKeyEncoding = errors.New("lightrsa: malformed public key encoding")
)

// PublicKey is an RSA public key with E = 3.
type PublicKey struct {
	N *big.Int
}

// PrivateKey is an RSA private key with CRT parameters for fast decryption.
type PrivateKey struct {
	PublicKey
	D    *big.Int
	P, Q *big.Int
	// CRT precomputation.
	dp, dq, qInv *big.Int
}

// Size returns the modulus size in bytes.
func (k *PublicKey) Size() int { return (k.N.BitLen() + 7) / 8 }

// GenerateKey creates a key pair with an n-bit modulus using entropy from
// rng. Primes are chosen so that 3 is coprime with φ(n).
func GenerateKey(rng io.Reader, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, ErrKeyTooSmall
	}
	e := big.NewInt(PublicExponent)
	one := big.NewInt(1)
	for {
		p, err := rand.Prime(rng, bits/2)
		if err != nil {
			return nil, fmt.Errorf("lightrsa: generating p: %w", err)
		}
		q, err := rand.Prime(rng, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("lightrsa: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		if new(big.Int).Mod(phi, e).Sign() == 0 {
			continue // e shares a factor with φ(n); re-draw
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue
		}
		key := &PrivateKey{
			PublicKey: PublicKey{N: n},
			D:         d,
			P:         p,
			Q:         q,
			dp:        new(big.Int).Mod(d, pm1),
			dq:        new(big.Int).Mod(d, qm1),
			qInv:      new(big.Int).ModInverse(q, p),
		}
		return key, nil
	}
}

// EncryptRaw performs the textbook RSA operation m^3 mod N on a message
// already formatted as a full-size block. Used by benchmarks to isolate
// the neutralizer-side cost.
func (k *PublicKey) EncryptRaw(block []byte) ([]byte, error) {
	m := new(big.Int).SetBytes(block)
	if m.Cmp(k.N) >= 0 {
		return nil, ErrMessageTooLong
	}
	c := new(big.Int).Exp(m, big.NewInt(PublicExponent), k.N)
	return leftPad(c.Bytes(), k.Size()), nil
}

// Encrypt encrypts msg with randomized padding:
//
//	0x00 0x02 <nonzero random padding> 0x00 <msg>
//
// The layout follows PKCS#1 v1.5 block type 2 so that low-exponent attacks
// on tiny unpadded messages don't trivially apply; with e=3 and a one-time
// key this matches the paper's security budget (and its caveats).
func (k *PublicKey) Encrypt(rng io.Reader, msg []byte) ([]byte, error) {
	size := k.Size()
	if len(msg) > size-11 {
		return nil, ErrMessageTooLong
	}
	block := make([]byte, size)
	block[0] = 0x00
	block[1] = 0x02
	ps := block[2 : size-len(msg)-1]
	if err := fillNonZero(rng, ps); err != nil {
		return nil, err
	}
	block[size-len(msg)-1] = 0x00
	copy(block[size-len(msg):], msg)
	return k.EncryptRaw(block)
}

// Decrypt reverses Encrypt using CRT exponentiation (the slow, source-side
// operation).
func (k *PrivateKey) Decrypt(ct []byte) ([]byte, error) {
	c := new(big.Int).SetBytes(ct)
	if c.Cmp(k.N) >= 0 {
		return nil, ErrDecryption
	}
	m := k.decryptCRT(c)
	block := leftPad(m.Bytes(), k.Size())
	// Unpad: 0x00 0x02 PS 0x00 msg
	if block[0] != 0x00 || block[1] != 0x02 {
		return nil, ErrDecryption
	}
	idx := -1
	for i := 2; i < len(block); i++ {
		if block[i] == 0x00 {
			idx = i
			break
		}
	}
	if idx < 10 { // at least 8 bytes of padding required
		return nil, ErrDecryption
	}
	return block[idx+1:], nil
}

// decryptCRT computes c^d mod N via the Chinese Remainder Theorem.
func (k *PrivateKey) decryptCRT(c *big.Int) *big.Int {
	m1 := new(big.Int).Exp(c, k.dp, k.P)
	m2 := new(big.Int).Exp(c, k.dq, k.Q)
	h := new(big.Int).Sub(m1, m2)
	h.Mod(h, k.P)
	h.Mul(h, k.qInv)
	h.Mod(h, k.P)
	m := new(big.Int).Mul(h, k.Q)
	m.Add(m, m2)
	return m
}

// Marshal encodes the public key for the wire: 2-byte big-endian modulus
// length followed by the modulus bytes. The exponent is implicitly 3.
func (k *PublicKey) Marshal() []byte {
	nb := k.N.Bytes()
	out := make([]byte, 2+len(nb))
	out[0] = byte(len(nb) >> 8)
	out[1] = byte(len(nb))
	copy(out[2:], nb)
	return out
}

// UnmarshalPublicKey reverses Marshal. It returns the number of bytes
// consumed so callers can parse keys embedded in larger messages.
func UnmarshalPublicKey(data []byte) (*PublicKey, int, error) {
	if len(data) < 2 {
		return nil, 0, ErrBadKeyEncoding
	}
	n := int(data[0])<<8 | int(data[1])
	if n == 0 || len(data) < 2+n {
		return nil, 0, ErrBadKeyEncoding
	}
	N := new(big.Int).SetBytes(data[2 : 2+n])
	if N.BitLen() < 128 {
		return nil, 0, ErrKeyTooSmall
	}
	return &PublicKey{N: N}, 2 + n, nil
}

func leftPad(b []byte, size int) []byte {
	if len(b) >= size {
		return b
	}
	out := make([]byte, size)
	copy(out[size-len(b):], b)
	return out
}

func fillNonZero(rng io.Reader, out []byte) error {
	if rng == nil {
		rng = rand.Reader
	}
	buf := make([]byte, len(out)+8)
	i := 0
	for i < len(out) {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return fmt.Errorf("lightrsa: reading entropy: %w", err)
		}
		for _, b := range buf {
			if b != 0 {
				out[i] = b
				i++
				if i == len(out) {
					break
				}
			}
		}
	}
	return nil
}
