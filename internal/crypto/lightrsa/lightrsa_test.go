package lightrsa

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// testKey is generated once; key generation dominates test time otherwise.
var testKey = mustGenerate(DefaultBits)

func mustGenerate(bits int) *PrivateKey {
	k, err := GenerateKey(rand.Reader, bits)
	if err != nil {
		panic(err)
	}
	return k
}

func TestGenerateKeyProperties(t *testing.T) {
	k := testKey
	if k.N.BitLen() != DefaultBits {
		t.Errorf("modulus bits = %d, want %d", k.N.BitLen(), DefaultBits)
	}
	// N = P*Q
	if new(big.Int).Mul(k.P, k.Q).Cmp(k.N) != 0 {
		t.Error("N != P*Q")
	}
	// e*d ≡ 1 mod φ(N)
	phi := new(big.Int).Mul(
		new(big.Int).Sub(k.P, big.NewInt(1)),
		new(big.Int).Sub(k.Q, big.NewInt(1)),
	)
	ed := new(big.Int).Mul(big.NewInt(PublicExponent), k.D)
	if new(big.Int).Mod(ed, phi).Cmp(big.NewInt(1)) != 0 {
		t.Error("e*d != 1 mod phi")
	}
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 64); err != ErrKeyTooSmall {
		t.Errorf("err = %v, want ErrKeyTooSmall", err)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	msg := []byte("nonce+Ks = 24 bytes max.")
	ct, err := testKey.PublicKey.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if len(ct) != testKey.Size() {
		t.Errorf("ciphertext length = %d, want %d", len(ct), testKey.Size())
	}
	pt, err := testKey.Decrypt(ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(pt, msg) {
		t.Errorf("roundtrip mismatch: %q", pt)
	}
}

func TestEncryptRandomized(t *testing.T) {
	msg := []byte("same message")
	c1, err := testKey.PublicKey.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := testKey.PublicKey.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1, c2) {
		t.Error("padding must randomize ciphertexts")
	}
}

func TestEncryptTooLong(t *testing.T) {
	long := make([]byte, testKey.Size()-10) // > size-11
	if _, err := testKey.PublicKey.Encrypt(rand.Reader, long); err != ErrMessageTooLong {
		t.Errorf("err = %v, want ErrMessageTooLong", err)
	}
}

func TestDecryptGarbage(t *testing.T) {
	garbage := make([]byte, testKey.Size())
	for i := range garbage {
		garbage[i] = byte(i * 7)
	}
	garbage[0] = 0 // keep below N
	if _, err := testKey.Decrypt(garbage); err == nil {
		t.Error("decrypting garbage should fail padding check")
	}
	tooBig := new(big.Int).Add(testKey.N, big.NewInt(1)).Bytes()
	if _, err := testKey.Decrypt(tooBig); err != ErrDecryption {
		t.Errorf("ct >= N: err = %v, want ErrDecryption", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(msg []byte) bool {
		if len(msg) > testKey.Size()-11 {
			msg = msg[:testKey.Size()-11]
		}
		ct, err := testKey.PublicKey.Encrypt(rand.Reader, msg)
		if err != nil {
			return false
		}
		pt, err := testKey.Decrypt(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMarshalUnmarshalPublicKey(t *testing.T) {
	enc := testKey.PublicKey.Marshal()
	pk, n, err := UnmarshalPublicKey(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d bytes, want %d", n, len(enc))
	}
	if pk.N.Cmp(testKey.N) != 0 {
		t.Error("modulus mismatch after roundtrip")
	}
	// Embedded in a larger buffer.
	buf := append(enc, []byte("trailing")...)
	if _, n2, err := UnmarshalPublicKey(buf); err != nil || n2 != len(enc) {
		t.Errorf("embedded unmarshal: n=%d err=%v", n2, err)
	}
}

func TestUnmarshalPublicKeyErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x01},
		{0x00, 0x00},             // zero length
		{0x00, 0x10, 0x01, 0x02}, // truncated modulus
	}
	for i, c := range cases {
		if _, _, err := UnmarshalPublicKey(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	// Modulus too small.
	small := append([]byte{0x00, 0x02}, 0xff, 0xff)
	if _, _, err := UnmarshalPublicKey(small); err != ErrKeyTooSmall {
		t.Errorf("small modulus: err = %v", err)
	}
}

func TestEncryptRawBounds(t *testing.T) {
	block := make([]byte, testKey.Size())
	for i := range block {
		block[i] = 0xff
	}
	if _, err := testKey.PublicKey.EncryptRaw(block); err != ErrMessageTooLong {
		t.Errorf("block >= N: err = %v, want ErrMessageTooLong", err)
	}
}

func TestOneTimeKeysDiffer(t *testing.T) {
	k2 := mustGenerate(DefaultBits)
	if k2.N.Cmp(testKey.N) == 0 {
		t.Error("two generated keys share a modulus")
	}
}

func BenchmarkEncrypt512(b *testing.B) {
	msg := make([]byte, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := testKey.PublicKey.Encrypt(rand.Reader, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt512(b *testing.B) {
	msg := make([]byte, 24)
	ct, err := testKey.PublicKey.Encrypt(rand.Reader, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := testKey.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateKey512(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateKey(rand.Reader, DefaultBits); err != nil {
			b.Fatal(err)
		}
	}
}
