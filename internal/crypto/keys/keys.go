// Package keys implements the neutralizer's master-key schedule and the
// stateless session-key derivation at the heart of the design.
//
// A neutralizer holds a long-term root secret from which per-epoch master
// keys KM are derived. The paper assumes "a neutralizer's master key lasts
// for an hour"; epochs make that rotation explicit, and a one-epoch grace
// window lets packets keyed just before a rotation still decrypt.
//
// All neutralizers of a domain share the root secret, so ANY replica can
// derive Ks = hash(KM, nonce, srcIP) for any packet — the anycast,
// fault-tolerant property the paper calls out ("as long as the
// neutralizers of a domain share the master key KM, any neutralizer can
// decrypt the destination address and forward the packet").
package keys

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"time"

	"netneutral/internal/crypto/aesutil"
)

// DefaultEpochLength mirrors the paper's hourly master key.
const DefaultEpochLength = time.Hour

// Epoch identifies a master-key validity period.
type Epoch uint32

// Nonce is the per-source random value carried in clear in the shim
// header; together with the source address and KM it determines Ks.
type Nonce [8]byte

// NewNonce draws a random nonce from rng (crypto/rand if nil).
func NewNonce(rng io.Reader) (Nonce, error) {
	if rng == nil {
		rng = rand.Reader
	}
	var n Nonce
	if _, err := io.ReadFull(rng, n[:]); err != nil {
		return Nonce{}, fmt.Errorf("keys: reading nonce entropy: %w", err)
	}
	return n, nil
}

// Uint64 returns the nonce as a big-endian integer (for logging/metrics).
func (n Nonce) Uint64() uint64 { return binary.BigEndian.Uint64(n[:]) }

// Schedule derives per-epoch master keys from a root secret. The zero
// value is not usable; construct with NewSchedule. A Schedule is safe for
// concurrent use; the only mutable state is a cache of derived per-epoch
// master keys (pure functions of the root, so caching does not violate
// the neutralizer's statelessness — the cache is config, not flow state).
type Schedule struct {
	root     aesutil.Key
	epochLen time.Duration
	start    time.Time

	mu    sync.Mutex
	cache map[Epoch]aesutil.Key
}

// NewSchedule creates a schedule anchored at start with the given epoch
// length (DefaultEpochLength if zero).
func NewSchedule(root aesutil.Key, start time.Time, epochLen time.Duration) *Schedule {
	if epochLen <= 0 {
		epochLen = DefaultEpochLength
	}
	return &Schedule{root: root, epochLen: epochLen, start: start, cache: make(map[Epoch]aesutil.Key)}
}

// NewRandomSchedule creates a schedule with a random root secret.
func NewRandomSchedule(start time.Time, epochLen time.Duration) (*Schedule, error) {
	var root aesutil.Key
	if _, err := io.ReadFull(rand.Reader, root[:]); err != nil {
		return nil, fmt.Errorf("keys: reading root entropy: %w", err)
	}
	return NewSchedule(root, start, epochLen), nil
}

// EpochLength returns the schedule's rotation period.
func (s *Schedule) EpochLength() time.Duration { return s.epochLen }

// EpochAt returns the epoch in force at time t. Times before the anchor
// map to epoch 0.
func (s *Schedule) EpochAt(t time.Time) Epoch {
	d := t.Sub(s.start)
	if d < 0 {
		return 0
	}
	return Epoch(d / s.epochLen)
}

// MasterKey returns KM for the given epoch, derived from the root secret
// (cached: a handful of epochs are ever live).
func (s *Schedule) MasterKey(e Epoch) aesutil.Key {
	s.mu.Lock()
	if k, ok := s.cache[e]; ok {
		s.mu.Unlock()
		return k
	}
	s.mu.Unlock()
	var eb [4]byte
	binary.BigEndian.PutUint32(eb[:], uint32(e))
	k := aesutil.DeriveKey(s.root, []byte("netneutral-master-key"), eb[:])
	s.mu.Lock()
	s.cache[e] = k
	s.mu.Unlock()
	return k
}

// Acceptable reports whether a packet keyed under epoch pkt should be
// accepted at time now: the current epoch always, and the immediately
// previous epoch as a grace window for packets in flight across a
// rotation.
func (s *Schedule) Acceptable(pkt Epoch, now time.Time) bool {
	cur := s.EpochAt(now)
	return pkt == cur || (cur > 0 && pkt == cur-1)
}

// SessionKey computes the paper's core derivation
//
//	Ks = hash(KM, nonce, srcIP)
//
// for the given epoch. The computation is pure: no state is read or
// written, which is what makes the neutralizer stateless and replicable.
func (s *Schedule) SessionKey(e Epoch, nonce Nonce, src netip.Addr) (aesutil.Key, error) {
	if !src.Is4() {
		return aesutil.Key{}, fmt.Errorf("keys: source %v is not IPv4", src)
	}
	a4 := src.As4()
	km := s.MasterKey(e)
	return aesutil.DeriveKey(km, nonce[:], a4[:]), nil
}

// SessionKeyAt is SessionKey with the epoch resolved from a timestamp.
func (s *Schedule) SessionKeyAt(now time.Time, nonce Nonce, src netip.Addr) (aesutil.Key, Epoch, error) {
	e := s.EpochAt(now)
	k, err := s.SessionKey(e, nonce, src)
	return k, e, err
}
