// Package keys implements the neutralizer's master-key schedule and the
// stateless session-key derivation at the heart of the design.
//
// A neutralizer holds a long-term root secret from which per-epoch master
// keys KM are derived. The paper assumes "a neutralizer's master key lasts
// for an hour"; epochs make that rotation explicit, and a one-epoch grace
// window lets packets keyed just before a rotation still decrypt.
//
// All neutralizers of a domain share the root secret, so ANY replica can
// derive Ks = hash(KM, nonce, srcIP) for any packet — the anycast,
// fault-tolerant property the paper calls out ("as long as the
// neutralizers of a domain share the master key KM, any neutralizer can
// decrypt the destination address and forward the packet").
package keys

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"netneutral/internal/crypto/aesutil"
)

// DefaultEpochLength mirrors the paper's hourly master key.
const DefaultEpochLength = time.Hour

// Epoch identifies a master-key validity period.
type Epoch uint32

// Nonce is the per-source random value carried in clear in the shim
// header; together with the source address and KM it determines Ks.
type Nonce [8]byte

// NewNonce draws a random nonce from rng (crypto/rand if nil).
func NewNonce(rng io.Reader) (Nonce, error) {
	if rng == nil {
		rng = rand.Reader
	}
	var n Nonce
	if _, err := io.ReadFull(rng, n[:]); err != nil {
		return Nonce{}, fmt.Errorf("keys: reading nonce entropy: %w", err)
	}
	return n, nil
}

// Uint64 returns the nonce as a big-endian integer (for logging/metrics).
func (n Nonce) Uint64() uint64 { return binary.BigEndian.Uint64(n[:]) }

// Schedule derives per-epoch master keys from a root secret. The zero
// value is not usable; construct with NewSchedule. A Schedule is safe for
// concurrent use; the only mutable state is a cache of derived per-epoch
// master keys (pure functions of the root, so caching does not violate
// the neutralizer's statelessness — the cache is config, not flow state).
//
// The cache is copy-on-write: readers load an immutable map through an
// atomic pointer and never take a lock, so session-key derivation scales
// linearly across the shard workers hammering one shared Schedule. Only
// the handful of first-packet-of-an-epoch writers serialize on the mutex.
type Schedule struct {
	root     aesutil.Key
	epochLen time.Duration
	start    time.Time

	cache atomic.Pointer[map[Epoch]epochEntry]
	mu    sync.Mutex // serializes cache writers only

	// derives counts slow-path epoch derivations (cache misses that won
	// the writer race). Updated only under mu; read freely.
	derives atomic.Uint64
}

// Derivations reports how many epoch entries the schedule has derived on
// the slow path — the cache-miss count from the derivation side. Together
// with per-Work hit counters (see Work.EpochCacheStats) this quantifies
// how hard the copy-on-write epoch cache is working.
func (s *Schedule) Derivations() uint64 { return s.derives.Load() }

// epochEntry caches everything derivable from one epoch's master key:
// the key itself and its pre-expanded AES cipher, so the per-packet KDF
// pays neither aes.NewCipher nor its allocation.
type epochEntry struct {
	key aesutil.Key
	blk aesutil.Block
}

// NewSchedule creates a schedule anchored at start with the given epoch
// length (DefaultEpochLength if zero).
func NewSchedule(root aesutil.Key, start time.Time, epochLen time.Duration) *Schedule {
	if epochLen <= 0 {
		epochLen = DefaultEpochLength
	}
	s := &Schedule{root: root, epochLen: epochLen, start: start}
	empty := make(map[Epoch]epochEntry)
	s.cache.Store(&empty)
	return s
}

// NewRandomSchedule creates a schedule with a random root secret.
func NewRandomSchedule(start time.Time, epochLen time.Duration) (*Schedule, error) {
	var root aesutil.Key
	if _, err := io.ReadFull(rand.Reader, root[:]); err != nil {
		return nil, fmt.Errorf("keys: reading root entropy: %w", err)
	}
	return NewSchedule(root, start, epochLen), nil
}

// EpochLength returns the schedule's rotation period.
func (s *Schedule) EpochLength() time.Duration { return s.epochLen }

// EpochAt returns the epoch in force at time t. Times before the anchor
// map to epoch 0.
func (s *Schedule) EpochAt(t time.Time) Epoch {
	d := t.Sub(s.start)
	if d < 0 {
		return 0
	}
	return Epoch(d / s.epochLen)
}

// MasterKey returns KM for the given epoch, derived from the root secret
// (cached: a handful of epochs are ever live).
func (s *Schedule) MasterKey(e Epoch) aesutil.Key {
	ent, _ := s.epoch(e)
	return ent.key
}

// epoch returns the cached entry for e, deriving and publishing it on
// first use, and reports whether the lock-free fast path hit.
func (s *Schedule) epoch(e Epoch) (epochEntry, bool) {
	if ent, ok := (*s.cache.Load())[e]; ok {
		return ent, true
	}
	return s.deriveEpoch(e), false
}

// deriveEpoch is the slow path: derive KM for e under the writer lock
// and publish a copy-on-write successor cache.
func (s *Schedule) deriveEpoch(e Epoch) epochEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.cache.Load()
	if ent, ok := old[e]; ok {
		return ent
	}
	s.derives.Add(1)
	var eb [4]byte
	binary.BigEndian.PutUint32(eb[:], uint32(e))
	k := aesutil.DeriveKey(s.root, []byte("netneutral-master-key"), eb[:])
	ent := epochEntry{key: k, blk: aesutil.NewBlock(k)}
	next := make(map[Epoch]epochEntry, len(old)+1)
	for ep, v := range old {
		next[ep] = v
	}
	next[e] = ent
	s.cache.Store(&next)
	return ent
}

// Acceptable reports whether a packet keyed under epoch pkt should be
// accepted at time now: the current epoch always, and the immediately
// previous epoch as a grace window for packets in flight across a
// rotation.
func (s *Schedule) Acceptable(pkt Epoch, now time.Time) bool {
	cur := s.EpochAt(now)
	return pkt == cur || (cur > 0 && pkt == cur-1)
}

// Work holds the reusable working state of a session-key derivation.
// Buffers routed through the cipher.Block interface escape to the heap,
// so they must live in caller-owned storage (one Work per worker) for
// SessionKeyInto to be allocation-free. The zero value is ready to use.
type Work struct {
	mac aesutil.MACScratch
	// frame is the length-prefixed encoding of (nonce, srcIP):
	// len16(8) ‖ nonce ‖ len16(4) ‖ addr — 16 bytes, one AES block.
	frame [16]byte

	// epochHits / epochMisses count epoch-cache outcomes of derivations
	// through this Work. Plain fields on single-writer state: the owner
	// increments them for free on the hot path and copies them out at
	// batch boundaries (see core.Pool's instrumentation); reading them
	// concurrently with derivations is a data race by design.
	epochHits   uint64
	epochMisses uint64
}

// EpochCacheStats reports the epoch-cache hit/miss counts of derivations
// run through this Work. Owner-only: call it from the goroutine that owns
// the Work (or at a quiescent point), never concurrently with
// SessionKeyInto.
func (w *Work) EpochCacheStats() (hits, misses uint64) {
	return w.epochHits, w.epochMisses
}

// SessionKey computes the paper's core derivation
//
//	Ks = hash(KM, nonce, srcIP)
//
// for the given epoch. The computation is pure: no state is read or
// written, which is what makes the neutralizer stateless and replicable.
func (s *Schedule) SessionKey(e Epoch, nonce Nonce, src netip.Addr) (aesutil.Key, error) {
	var w Work
	return s.SessionKeyInto(&w, e, nonce, src)
}

// SessionKeyInto is SessionKey with the working state supplied by the
// caller: two AES block operations under the cached epoch cipher and zero
// allocations. It computes bit-identical output to SessionKey.
func (s *Schedule) SessionKeyInto(w *Work, e Epoch, nonce Nonce, src netip.Addr) (aesutil.Key, error) {
	if !src.Is4() {
		return aesutil.Key{}, fmt.Errorf("keys: source %v is not IPv4", src)
	}
	a4 := src.As4()
	// Same framing as aesutil.DeriveKey(km, nonce[:], a4[:]).
	binary.BigEndian.PutUint16(w.frame[0:2], 8)
	copy(w.frame[2:10], nonce[:])
	binary.BigEndian.PutUint16(w.frame[10:12], 4)
	copy(w.frame[12:16], a4[:])
	ent, hit := s.epoch(e)
	if hit {
		w.epochHits++
	} else {
		w.epochMisses++
	}
	return ent.blk.CBCMACScratch(&w.mac, w.frame[:]), nil
}

// SessionKeyAt is SessionKey with the epoch resolved from a timestamp.
func (s *Schedule) SessionKeyAt(now time.Time, nonce Nonce, src netip.Addr) (aesutil.Key, Epoch, error) {
	e := s.EpochAt(now)
	k, err := s.SessionKey(e, nonce, src)
	return k, e, err
}
