package keys

import (
	mathrand "math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"netneutral/internal/crypto/aesutil"
)

var (
	t0   = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	root = aesutil.Key{42}
)

func newTestSchedule() *Schedule { return NewSchedule(root, t0, time.Hour) }

func TestEpochAt(t *testing.T) {
	s := newTestSchedule()
	cases := []struct {
		t    time.Time
		want Epoch
	}{
		{t0, 0},
		{t0.Add(59 * time.Minute), 0},
		{t0.Add(time.Hour), 1},
		{t0.Add(90 * time.Minute), 1},
		{t0.Add(48 * time.Hour), 48},
		{t0.Add(-time.Hour), 0}, // before anchor clamps to 0
	}
	for _, c := range cases {
		if got := s.EpochAt(c.t); got != c.want {
			t.Errorf("EpochAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestMasterKeyPerEpoch(t *testing.T) {
	s := newTestSchedule()
	k0, k1 := s.MasterKey(0), s.MasterKey(1)
	if k0 == k1 {
		t.Error("epochs must have distinct master keys")
	}
	if s.MasterKey(0) != k0 {
		t.Error("MasterKey must be deterministic")
	}
}

func TestSessionKeyDeterministicAndStateless(t *testing.T) {
	s := newTestSchedule()
	n := Nonce{1, 2, 3, 4, 5, 6, 7, 8}
	src := netip.MustParseAddr("198.51.100.9")
	a, err := s.SessionKey(3, n, src)
	if err != nil {
		t.Fatal(err)
	}
	// A *different* Schedule instance with the same root derives the same
	// key: this is the anycast/replica property.
	s2 := NewSchedule(root, t0, time.Hour)
	b, err := s2.SessionKey(3, n, src)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("replicas sharing the root must derive identical session keys")
	}
}

func TestSessionKeySensitivity(t *testing.T) {
	s := newTestSchedule()
	n := Nonce{1}
	src := netip.MustParseAddr("198.51.100.9")
	base, _ := s.SessionKey(0, n, src)
	if k, _ := s.SessionKey(1, n, src); k == base {
		t.Error("epoch change must change Ks")
	}
	if k, _ := s.SessionKey(0, Nonce{2}, src); k == base {
		t.Error("nonce change must change Ks")
	}
	if k, _ := s.SessionKey(0, n, netip.MustParseAddr("198.51.100.10")); k == base {
		t.Error("source change must change Ks")
	}
}

func TestSessionKeyRejectsNonIPv4(t *testing.T) {
	s := newTestSchedule()
	if _, err := s.SessionKey(0, Nonce{}, netip.MustParseAddr("2001:db8::1")); err == nil {
		t.Error("IPv6 source should be rejected")
	}
}

func TestAcceptableGraceWindow(t *testing.T) {
	s := newTestSchedule()
	now := t0.Add(2*time.Hour + time.Minute) // epoch 2
	if !s.Acceptable(2, now) {
		t.Error("current epoch must be acceptable")
	}
	if !s.Acceptable(1, now) {
		t.Error("previous epoch must be acceptable (grace)")
	}
	if s.Acceptable(0, now) {
		t.Error("two-epochs-old must be rejected")
	}
	if s.Acceptable(3, now) {
		t.Error("future epoch must be rejected")
	}
	// At epoch 0 there is no previous epoch.
	if !s.Acceptable(0, t0) {
		t.Error("epoch 0 at start must be acceptable")
	}
}

func TestSessionKeyAt(t *testing.T) {
	s := newTestSchedule()
	src := netip.MustParseAddr("10.1.1.1")
	k, e, err := s.SessionKeyAt(t0.Add(3*time.Hour), Nonce{9}, src)
	if err != nil {
		t.Fatal(err)
	}
	if e != 3 {
		t.Errorf("epoch = %d, want 3", e)
	}
	k2, err := s.SessionKey(3, Nonce{9}, src)
	if err != nil {
		t.Fatal(err)
	}
	if k != k2 {
		t.Error("SessionKeyAt disagrees with SessionKey")
	}
}

func TestNewNonceUnique(t *testing.T) {
	a, err := NewNonce(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNonce(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two random nonces collided (astronomically unlikely)")
	}
	if a.Uint64() == 0 && b.Uint64() == 0 {
		t.Error("nonces read as zero; entropy not consumed?")
	}
}

func TestDefaultEpochLength(t *testing.T) {
	s := NewSchedule(root, t0, 0)
	if s.EpochLength() != time.Hour {
		t.Errorf("default epoch length = %v, want 1h (paper's hourly master key)", s.EpochLength())
	}
}

func TestNewRandomSchedule(t *testing.T) {
	s1, err := NewRandomSchedule(t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewRandomSchedule(t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if s1.MasterKey(0) == s2.MasterKey(0) {
		t.Error("independent random schedules share keys")
	}
}

func TestSessionKeyCollisionResistanceProperty(t *testing.T) {
	s := newTestSchedule()
	f := func(n1, n2 [8]byte, a1, a2 [4]byte) bool {
		if n1 == n2 && a1 == a2 {
			return true
		}
		k1, err1 := s.SessionKey(0, Nonce(n1), netip.AddrFrom4(a1))
		k2, err2 := s.SessionKey(0, Nonce(n2), netip.AddrFrom4(a2))
		return err1 == nil && err2 == nil && k1 != k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSessionKey(b *testing.B) {
	s := newTestSchedule()
	src := netip.MustParseAddr("10.0.0.1")
	n := Nonce{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.SessionKey(0, n, src); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSessionKeyIntoMatchesDeriveKey pins SessionKeyInto (cached-cipher,
// zero-alloc) to the reference framing aesutil.DeriveKey(km, nonce, addr):
// replicas old and new must derive identical session keys.
func TestSessionKeyIntoMatchesDeriveKey(t *testing.T) {
	s := newTestSchedule()
	var w Work
	rng := mathrand.New(mathrand.NewSource(3))
	for i := 0; i < 300; i++ {
		var n Nonce
		var a4 [4]byte
		rng.Read(n[:])
		rng.Read(a4[:])
		e := Epoch(rng.Intn(4))
		src := netip.AddrFrom4(a4)
		want := aesutil.DeriveKey(s.MasterKey(e), n[:], a4[:])
		got, err := s.SessionKeyInto(&w, e, n, src)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: SessionKeyInto diverges from DeriveKey framing", i)
		}
		slow, err := s.SessionKey(e, n, src)
		if err != nil || slow != want {
			t.Fatalf("iter %d: SessionKey diverges (err=%v)", i, err)
		}
	}
	if _, err := s.SessionKeyInto(&w, 0, Nonce{}, netip.MustParseAddr("::1")); err == nil {
		t.Fatal("SessionKeyInto accepted an IPv6 source")
	}
}

func TestSessionKeyIntoZeroAlloc(t *testing.T) {
	s := newTestSchedule()
	src := netip.MustParseAddr("10.0.0.1")
	var w Work
	var n Nonce
	s.MasterKey(0) // prime the epoch cache
	allocs := testing.AllocsPerRun(200, func() {
		n[0]++
		if _, err := s.SessionKeyInto(&w, 0, n, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SessionKeyInto allocates %v per op, want 0", allocs)
	}
}

func BenchmarkSessionKeyInto(b *testing.B) {
	s := newTestSchedule()
	src := netip.MustParseAddr("10.0.0.1")
	n := Nonce{1, 2, 3, 4, 5, 6, 7, 8}
	var w Work
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.SessionKeyInto(&w, 0, n, src); err != nil {
			b.Fatal(err)
		}
	}
}
