//go:build race

package obs

// raceEnabled reports whether the race detector is active. Allocation
// assertions are skipped under -race: instrumentation inserts
// allocations the production path does not make.
const raceEnabled = true
