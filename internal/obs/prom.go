package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of a snapshot. Families
// registered with the `name{label="v"}` syntax share one TYPE/HELP
// block per base name; histograms render cumulative _bucket/_sum/_count
// series from the log-bucket array, emitting only the buckets where the
// cumulative count changes (plus +Inf) to keep metro-scale scrapes
// small.

// WritePrometheus renders snap in Prometheus text format. Samples are
// grouped by base name (Prometheus requires one contiguous block per
// metric even when labeled families were registered interleaved).
func WritePrometheus(w io.Writer, snap *Snapshot) error {
	var bases []string
	byBase := make(map[string][]*Metric)
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		if _, ok := byBase[m.Base]; !ok {
			bases = append(bases, m.Base)
		}
		byBase[m.Base] = append(byBase[m.Base], m)
	}
	for _, base := range bases {
		group := byBase[base]
		if h := group[0].Help; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, sanitizeHelp(h)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, group[0].Kind.String()); err != nil {
			return err
		}
		for _, m := range group {
			if m.Hist != nil {
				if err := writeHist(w, m); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", promName(m.Base, m.Labels, ""), fmtVal(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHist(w io.Writer, m *Metric) error {
	var cum uint64
	for i, n := range m.Hist.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		_, hi := bucketBounds(i)
		le := strconv.FormatUint(hi, 10)
		if _, err := fmt.Fprintf(w, "%s %d\n", promName(m.Base+"_bucket", m.Labels, `le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", promName(m.Base+"_bucket", m.Labels, `le="+Inf"`), m.Hist.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", promName(m.Base+"_sum", m.Labels, ""), m.Hist.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", promName(m.Base+"_count", m.Labels, ""), m.Hist.Count)
	return err
}

// promName joins a base name with registered labels and an extra label.
func promName(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

// fmtVal renders a sample value: integers exactly, floats in shortest
// form.
func fmtVal(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sanitizeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
