package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span assembly: stitch the flight recorder's merged TraceRecs into
// per-packet journeys and per-flow spans, and export them as Chrome
// trace-event JSON (Perfetto loads it directly) or NDJSON. Assembly is
// pure bookkeeping over the already-deterministic event set, so spans —
// like the events beneath them — are bit-identical at any worker count.

// Trace kind numbering, mirrored from netem.TraceKind (obs cannot
// import netem; netem's tests pin the mirror). KindSend opens a journey,
// KindDeliver closes it, kinds >= KindDropQueue end it in a drop.
const (
	KindSend        uint8 = 1
	KindForward     uint8 = 2
	KindDeliver     uint8 = 3
	KindDropQueue   uint8 = 4
	KindDropPolicy  uint8 = 5
	KindDropNoRoute uint8 = 6
	KindDropTTL     uint8 = 7
)

var kindNames = map[uint8]string{
	KindSend:        "send",
	KindForward:     "forward",
	KindDeliver:     "deliver",
	KindDropQueue:   "drop-queue",
	KindDropPolicy:  "drop-policy",
	KindDropNoRoute: "drop-noroute",
	KindDropTTL:     "drop-ttl",
}

var causeNames = map[uint8]string{
	1: "rule",
	2: "token-bucket",
	3: "random-drop",
	4: "class-delay",
	5: "queue-full",
}

// KindName renders a trace kind for exports and diagnostics.
func KindName(k uint8) string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("trace(%d)", k)
}

// CauseName renders a policy cause (netem.PolicyCause numbering).
func CauseName(c uint8) string {
	if n, ok := causeNames[c]; ok {
		return n
	}
	if c == 0 {
		return "none"
	}
	return fmt.Sprintf("cause(%d)", c)
}

// Journey is one packet's recorded path: the hop events sharing a
// journey id, in the merged (time, shard, seq) order.
type Journey struct {
	Flow uint64
	ID   uint64
	Hops []TraceRec
}

// Complete reports whether the journey was recorded end to end: it
// opens with the send event and closes with a delivery or a drop. Only
// complete journeys satisfy the attribution-sum invariant — a ring
// eviction that clips the head leaves a partial journey.
func (j *Journey) Complete() bool {
	if len(j.Hops) == 0 || j.Hops[0].Kind != KindSend {
		return false
	}
	last := j.Hops[len(j.Hops)-1].Kind
	return last == KindDeliver || last >= KindDropQueue
}

// Delivered reports whether the journey ends in a local delivery.
func (j *Journey) Delivered() bool {
	return len(j.Hops) > 0 && j.Hops[len(j.Hops)-1].Kind == KindDeliver
}

// AttrSumNanos sums the attributed delay components over every hop.
// For a complete journey this equals EndToEndNanos exactly.
func (j *Journey) AttrSumNanos() int64 {
	var n int64
	for i := range j.Hops {
		n += j.Hops[i].AttrTotalNanos()
	}
	return n
}

// EndToEndNanos is the virtual time between the journey's first and
// last recorded events.
func (j *Journey) EndToEndNanos() int64 {
	if len(j.Hops) == 0 {
		return 0
	}
	return j.Hops[len(j.Hops)-1].TimeNanos - j.Hops[0].TimeNanos
}

// FlowSpan groups one flow's journeys, in first-event order.
type FlowSpan struct {
	Flow     uint64
	Journeys []Journey
}

// AssembleSpans groups merged trace events (FlightRecorder.Events
// order) into per-flow spans of per-packet journeys. Events keep their
// merged order inside each journey.
func AssembleSpans(evs []TraceRec) []FlowSpan {
	spanIdx := make(map[uint64]int)
	journeyIdx := make(map[uint64]map[uint64]int)
	var spans []FlowSpan
	for _, e := range evs {
		si, ok := spanIdx[e.Flow]
		if !ok {
			si = len(spans)
			spanIdx[e.Flow] = si
			spans = append(spans, FlowSpan{Flow: e.Flow})
			journeyIdx[e.Flow] = make(map[uint64]int)
		}
		sp := &spans[si]
		ji, ok := journeyIdx[e.Flow][e.Journey]
		if !ok {
			ji = len(sp.Journeys)
			journeyIdx[e.Flow][e.Journey] = ji
			sp.Journeys = append(sp.Journeys, Journey{Flow: e.Flow, ID: e.Journey})
		}
		j := &sp.Journeys[ji]
		j.Hops = append(j.Hops, e)
	}
	return spans
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" complete slices, "i" instants, "M" metadata. Perfetto and
// chrome://tracing load the containing {"traceEvents": [...]} object.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON. Each flow
// becomes a process (pid), each journey a thread (tid); the gap between
// consecutive hops becomes an "X" slice named for the arriving hop and
// carrying the attributed components in args; sends and drops become
// instants. Timestamps are virtual microseconds; slice events are
// emitted in non-decreasing ts order.
func WriteChromeTrace(w io.Writer, spans []FlowSpan) error {
	var meta, evs []chromeEvent
	for pi := range spans {
		sp := &spans[pi]
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pi,
			Args: map[string]any{"name": fmt.Sprintf("flow %016x", sp.Flow)},
		})
		for ti := range sp.Journeys {
			j := &sp.Journeys[ti]
			meta = append(meta, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pi, Tid: ti,
				Args: map[string]any{"name": fmt.Sprintf("journey %d", j.ID)},
			})
			for k := range j.Hops {
				h := &j.Hops[k]
				if k == 0 || h.Kind >= KindDropQueue {
					evs = append(evs, chromeEvent{
						Name: KindName(h.Kind), Ph: "i", S: "t",
						Ts: float64(h.TimeNanos) / 1e3, Pid: pi, Tid: ti,
						Args: hopArgs(h),
					})
				}
				if k == 0 {
					continue
				}
				prev := &j.Hops[k-1]
				dur := float64(h.TimeNanos-prev.TimeNanos) / 1e3
				evs = append(evs, chromeEvent{
					Name: KindName(prev.Kind) + "→" + KindName(h.Kind), Ph: "X",
					Ts: float64(prev.TimeNanos) / 1e3, Dur: &dur, Pid: pi, Tid: ti,
					Args: hopArgs(h),
				})
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: append(meta, evs...), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// hopArgs renders one hop's attribution for the trace viewer.
func hopArgs(h *TraceRec) map[string]any {
	args := map[string]any{
		"node": h.Node, "shard": h.Shard, "size": h.Size,
		"queue_ns": h.QueueNanos, "ser_ns": h.SerializeNanos,
		"prop_ns": h.PropagateNanos, "policy_ns": h.PolicyNanos,
		"proc_ns": h.ProcNanos,
	}
	if h.Cause != 0 {
		args["cause"] = CauseName(h.Cause)
		args["class"] = h.Class
	}
	return args
}

// WriteTraceNDJSON writes the merged event stream as NDJSON, one
// TraceRec object per line — the raw form downstream tooling joins or
// filters without span assembly.
func WriteTraceNDJSON(w io.Writer, evs []TraceRec) error {
	enc := json.NewEncoder(w)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return err
		}
	}
	return nil
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and checks
// the schema invariants the scrape smoke and the CI trace step enforce:
// a non-empty traceEvents array, required keys per event, a known phase,
// non-negative dur on "X" slices, non-decreasing ts across non-metadata
// events, and balanced B/E pairs per (pid, tid) when duration events are
// used.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("chrome trace: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("chrome trace: empty traceEvents")
	}
	lastTs := make(map[[2]int]float64) // per (pid, tid) lanes stay ordered
	var globalTs float64
	globalSet := false
	open := make(map[[2]int]int)
	for i, ev := range doc.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok {
			return fmt.Errorf("chrome trace: event %d: missing ph", i)
		}
		if _, ok := ev["name"].(string); !ok {
			return fmt.Errorf("chrome trace: event %d: missing name", i)
		}
		switch ph {
		case "M":
			continue
		case "X", "B", "E", "i":
		default:
			return fmt.Errorf("chrome trace: event %d: unsupported ph %q", i, ph)
		}
		ts, ok := ev["ts"].(float64)
		if !ok {
			return fmt.Errorf("chrome trace: event %d: missing ts", i)
		}
		pid, okP := numField(ev, "pid")
		tid, okT := numField(ev, "tid")
		if !okP || !okT {
			return fmt.Errorf("chrome trace: event %d: missing pid/tid", i)
		}
		lane := [2]int{pid, tid}
		if globalSet && ts < globalTs {
			return fmt.Errorf("chrome trace: event %d: ts %v regresses below %v", i, ts, globalTs)
		}
		globalTs, globalSet = ts, true
		if last, ok := lastTs[lane]; ok && ts < last {
			return fmt.Errorf("chrome trace: event %d: lane %v ts regresses", i, lane)
		}
		lastTs[lane] = ts
		switch ph {
		case "X":
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				return fmt.Errorf("chrome trace: event %d: X without non-negative dur", i)
			}
		case "B":
			open[lane]++
		case "E":
			if open[lane] == 0 {
				return fmt.Errorf("chrome trace: event %d: E without matching B", i)
			}
			open[lane]--
		}
	}
	for lane, n := range open {
		if n != 0 {
			return fmt.Errorf("chrome trace: lane %v: %d unmatched B events", lane, n)
		}
	}
	return nil
}

func numField(ev map[string]any, key string) (int, bool) {
	v, ok := ev[key].(float64)
	if !ok {
		return 0, false
	}
	return int(v), true
}
