// Package obs is the repo's observability plane: a registry of named
// counters, gauges and log-bucketed histograms whose hot-path update is
// a plain field increment on a cache-line-padded, shard-local stripe —
// zero allocations, and no atomics on the deterministic simulation path.
// Merging across stripes happens only at read time (snapshots, epoch
// recorder ticks, HTTP scrapes), so a million-host run never serializes
// its counters at a barrier.
//
// Two write disciplines share one metric type:
//
//   - Plain stripes (Counter, Gauge, HistStripe) are single-writer: each
//     netem shard or eval experiment owns its stripe and updates it with
//     non-atomic field ops. Readers use atomic loads, and correctness
//     relies on reads happening at quiescent points (epoch barriers,
//     post-run) — exactly when the netem engine reads them.
//   - Atomic stripes (AtomicCounter, AtomicGauge) are the same memory
//     updated with atomic RMW ops, for genuinely concurrent writers:
//     core.Pool workers and the neutralizerd daemon path. Convert with
//     CounterVec.AtomicStripe / GaugeVec.AtomicStripe.
//
// The package deliberately imports nothing from the rest of the repo so
// every layer (netem, core, dpi, audit, trafficgen, simnet, daemons) can
// depend on it.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind labels what a registered family measures.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
	KindCounterFunc
	KindGaugeFunc
)

func (k Kind) String() string {
	switch k {
	case KindCounter, KindCounterFunc:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Counter is one write stripe of a counter family. Updates are plain
// field ops: the stripe must have exactly one writer (a netem shard, an
// eval goroutine). Readers (Value, Snapshot) use atomic loads and are
// exact only at quiescent points — which is when the engine reads them.
// The struct is padded so neighboring stripes never share a cache line.
type Counter struct {
	v uint64
	_ [56]byte
}

// Inc adds one. Single-writer; zero allocations, no atomics.
func (c *Counter) Inc() { c.v++ }

// Add adds n. Single-writer; zero allocations, no atomics.
func (c *Counter) Add(n uint64) { c.v += n }

// Value reads the stripe (atomic load; exact at quiescent points).
func (c *Counter) Value() uint64 { return atomic.LoadUint64(&c.v) }

// AtomicCounter is a Counter stripe written with atomic ops, for
// concurrent writers (core.Pool workers, the daemon path).
type AtomicCounter Counter

// Inc atomically adds one.
func (c *AtomicCounter) Inc() { atomic.AddUint64(&c.v, 1) }

// Add atomically adds n.
func (c *AtomicCounter) Add(n uint64) { atomic.AddUint64(&c.v, n) }

// Value reads the stripe.
func (c *AtomicCounter) Value() uint64 { return atomic.LoadUint64(&c.v) }

// Gauge is one write stripe of a gauge family (single-writer, padded).
// The family's merged value is the sum of its stripes, which is the
// useful merge for per-shard levels (heap depth, pool occupancy).
type Gauge struct {
	v int64
	_ [56]byte
}

// Set stores x. Single-writer.
func (g *Gauge) Set(x int64) { g.v = x }

// Add adds x. Single-writer.
func (g *Gauge) Add(x int64) { g.v += x }

// Value reads the stripe.
func (g *Gauge) Value() int64 { return atomic.LoadInt64(&g.v) }

// AtomicGauge is a Gauge stripe written with atomic ops.
type AtomicGauge Gauge

// Set atomically stores x.
func (g *AtomicGauge) Set(x int64) { atomic.StoreInt64(&g.v, x) }

// Add atomically adds x.
func (g *AtomicGauge) Add(x int64) { atomic.AddInt64(&g.v, x) }

// Value reads the stripe.
func (g *AtomicGauge) Value() int64 { return atomic.LoadInt64(&g.v) }

// family is one registered metric: a name (optionally carrying a fixed
// Prometheus label set), a kind, and either striped storage or a
// read-time callback.
type family struct {
	name     string // full name, e.g. `dpi_seen_packets_total{class="voip"}`
	base     string // name without labels
	labels   string // `class="voip"` or ""
	help     string
	kind     Kind
	volatile bool

	counter *CounterVec
	gauge   *GaugeVec
	hist    *HistogramVec
	cfn     func() uint64
	gfn     func() float64
}

// Registry holds metric families in registration order. Registration is
// get-or-create: asking for an existing name with the same kind returns
// the already-registered vector, so independent subsystems can share a
// family without coordination. Registration takes a lock; updates never
// do.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Option adjusts a family at registration time.
type Option func(*family)

// Volatile marks a family whose values depend on wall-clock execution
// (epoch wall latency, spin time): the epoch Recorder excludes volatile
// families from its deterministic time-series rings so that seeded runs
// stay bit-identical with recording on. Volatile metrics still appear in
// live snapshots and exports.
func Volatile() Option { return func(f *family) { f.volatile = true } }

// splitName separates `base{labels}` registration syntax.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

func validBase(base string) bool {
	if base == "" {
		return false
	}
	for i, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register is the get-or-create core shared by all metric constructors.
func (r *Registry) register(name, help string, kind Kind, opts []Option) (*family, bool) {
	base, labels := splitName(name)
	if !validBase(base) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		return f, false
	}
	f := &family{name: name, base: base, labels: labels, help: help, kind: kind}
	for _, o := range opts {
		o(f)
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f, true
}

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, opts ...Option) *CounterVec {
	f, fresh := r.register(name, help, KindCounter, opts)
	if fresh {
		f.counter = &CounterVec{fam: f}
	}
	return f.counter
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, opts ...Option) *GaugeVec {
	f, fresh := r.register(name, help, KindGauge, opts)
	if fresh {
		f.gauge = &GaugeVec{fam: f}
	}
	return f.gauge
}

// Histogram registers (or returns) a log-bucketed histogram family.
func (r *Registry) Histogram(name, help string, opts ...Option) *HistogramVec {
	f, fresh := r.register(name, help, KindHistogram, opts)
	if fresh {
		f.hist = &HistogramVec{fam: f}
	}
	return f.hist
}

// CounterFunc registers a counter whose value is computed at read time —
// the bridge for subsystems that already keep their own counters
// (dpi.Engine, core.Stats, simnet.Net). fn runs during Snapshot: on the
// sim path that is an epoch barrier (sources quiescent), on the daemon
// path fn must be safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, opts ...Option) {
	f, fresh := r.register(name, help, KindCounterFunc, opts)
	if fresh {
		f.cfn = fn
	}
}

// GaugeFunc registers a gauge computed at read time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, opts ...Option) {
	f, fresh := r.register(name, help, KindGaugeFunc, opts)
	if fresh {
		f.gfn = fn
	}
}

// CounterVec is a counter family: an append-only set of padded stripes.
// Register once at setup; hand each single-writer domain (shard, worker,
// flow source) its own stripe.
type CounterVec struct {
	fam     *family
	mu      sync.Mutex
	stripes []*Counter
}

// Stripe returns stripe i, growing the family as needed. Stripe pointers
// remain valid forever; call at setup, not on the hot path.
func (v *CounterVec) Stripe(i int) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.stripes) <= i {
		v.stripes = append(v.stripes, &Counter{})
	}
	return v.stripes[i]
}

// NewStripe appends and returns a fresh stripe (for dynamic writer sets,
// e.g. one stripe per traffic source).
func (v *CounterVec) NewStripe() *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := &Counter{}
	v.stripes = append(v.stripes, c)
	return c
}

// AtomicStripe returns stripe i for concurrent writers.
func (v *CounterVec) AtomicStripe(i int) *AtomicCounter {
	return (*AtomicCounter)(v.Stripe(i))
}

// Value merges the family: the sum of all stripes.
func (v *CounterVec) Value() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var n uint64
	for _, c := range v.stripes {
		n += atomic.LoadUint64(&c.v)
	}
	return n
}

// GaugeVec is a gauge family; merged value is the sum of stripes.
type GaugeVec struct {
	fam     *family
	mu      sync.Mutex
	stripes []*Gauge
}

// Stripe returns stripe i, growing the family as needed.
func (v *GaugeVec) Stripe(i int) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.stripes) <= i {
		v.stripes = append(v.stripes, &Gauge{})
	}
	return v.stripes[i]
}

// NewStripe appends and returns a fresh stripe.
func (v *GaugeVec) NewStripe() *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g := &Gauge{}
	v.stripes = append(v.stripes, g)
	return g
}

// AtomicStripe returns stripe i for concurrent writers.
func (v *GaugeVec) AtomicStripe(i int) *AtomicGauge {
	return (*AtomicGauge)(v.Stripe(i))
}

// Value merges the family: the sum of all stripes.
func (v *GaugeVec) Value() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var n int64
	for _, g := range v.stripes {
		n += atomic.LoadInt64(&g.v)
	}
	return n
}

// Metric is one family's merged value in a snapshot.
type Metric struct {
	// Name is the full registered name including any label set.
	Name string `json:"name"`
	// Base is the name without labels; families sharing a base are one
	// Prometheus metric with different label sets.
	Base string `json:"-"`
	// Labels is the raw label body (`class="voip"`), empty if none.
	Labels string `json:"labels,omitempty"`
	// Help is the registration help string.
	Help string `json:"-"`
	// Kind is the metric kind.
	Kind Kind `json:"-"`
	// Type is Kind rendered for JSON consumers.
	Type string `json:"type"`
	// Volatile marks wall-clock-dependent families (see Volatile).
	Volatile bool `json:"volatile,omitempty"`
	// Value is the merged value (counters, gauges, funcs).
	Value float64 `json:"value"`
	// Hist carries histogram state; nil for scalar kinds.
	Hist *HistSnap `json:"hist,omitempty"`
}

// Snapshot is a merged view of every registered family at one instant.
type Snapshot struct {
	// TimeNanos is the snapshot timestamp: wall time for live registry
	// snapshots, virtual sim time for recorder-published ones.
	TimeNanos int64 `json:"ts"`
	// Metrics lists families in registration order.
	Metrics []Metric `json:"metrics"`
}

// Get returns the metric with the given full name, or nil.
func (s *Snapshot) Get(name string) *Metric {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}

// Snapshot merges every family at this instant. Plain stripes are read
// with atomic loads: values are exact when writers are quiescent (epoch
// barrier, post-run) and merely torn-free otherwise. Func families
// invoke their callbacks.
func (r *Registry) Snapshot() *Snapshot {
	return r.snapshotAt(time.Now().UnixNano(), false)
}

func (r *Registry) snapshotAt(ts int64, skipVolatile bool) *Snapshot {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	snap := &Snapshot{TimeNanos: ts, Metrics: make([]Metric, 0, len(fams))}
	for _, f := range fams {
		if skipVolatile && f.volatile {
			continue
		}
		m := Metric{Name: f.name, Base: f.base, Labels: f.labels,
			Help: f.help, Kind: f.kind, Type: f.kind.String(), Volatile: f.volatile}
		switch f.kind {
		case KindCounter:
			m.Value = float64(f.counter.Value())
		case KindGauge:
			m.Value = float64(f.gauge.Value())
		case KindCounterFunc:
			m.Value = float64(f.cfn())
		case KindGaugeFunc:
			m.Value = f.gfn()
		case KindHistogram:
			m.Hist = f.hist.Snap()
			m.Value = float64(m.Hist.Count)
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// Names returns the registered full names, sorted (for tests and the
// scrape validator).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}
