package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_h_total", "help").Stripe(0).Add(11)
	fr := NewFlightRecorder(FlightConfig{SampleEvery: 1, RingSize: 4})
	st := fr.Stripe(0)
	st.Sample()
	st.Record(TraceRec{TimeNanos: 5, Kind: 3})
	streamer := NewStreamer()
	mux := NewHandler(HandlerConfig{Source: r, Streamer: streamer, Flight: fr})

	get := func(path string) (int, string, string) {
		req := httptest.NewRequest("GET", path, nil)
		rw := httptest.NewRecorder()
		mux.ServeHTTP(rw, req)
		body, _ := io.ReadAll(rw.Result().Body)
		return rw.Code, rw.Header().Get("Content-Type"), string(body)
	}

	code, ctype, body := get("/metrics")
	if code != 200 || !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics: code=%d type=%q", code, ctype)
	}
	if !strings.Contains(body, "test_h_total 11") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	code, ctype, body = get("/metrics.json")
	if code != 200 || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/metrics.json: code=%d type=%q", code, ctype)
	}
	if !strings.Contains(body, `"test_h_total"`) {
		t.Fatalf("/metrics.json missing metric:\n%s", body)
	}

	code, _, body = get("/flight.json")
	if code != 200 || !strings.Contains(body, `"ts":5`) {
		t.Fatalf("/flight.json: code=%d body=%s", code, body)
	}

	code, _, _ = get("/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
}
