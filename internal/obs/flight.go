package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// FlightRecorder is the bounded replacement for firehose trace hooks: a
// ring of sampled packet events per shard stripe, cheap enough to leave
// on at metro scale. Sampling is deterministic head sampling — every
// Nth event a stripe sees, decided by a per-stripe counter, never by a
// PRNG — plus per-flow tagging: events of a tagged flow are always
// recorded. Because stripes are per shard and the sampling decision is
// a pure function of the shard's own event sequence, the recorded set
// is bit-identical at every worker count; the merged view re-sorts by
// (time, shard, seq), the same total order the netem engine uses for
// trace hooks.
type FlightRecorder struct {
	sampleEvery uint64
	ringSize    int
	// flowAll / flowBar implement flow-keyed sampling: record every
	// event whose flow hash is below flowBar (flowAll short-circuits the
	// comparison for fraction 1).
	flowAll bool
	flowBar uint64

	mu      sync.Mutex
	stripes []*FlightStripe
	tags    map[uint64]struct{}
	tagged  bool
}

// FlightConfig sizes a FlightRecorder.
type FlightConfig struct {
	// SampleEvery records one of every N events per stripe (default 64;
	// 1 records everything).
	SampleEvery int
	// RingSize bounds each stripe's ring in events (default 4096); old
	// events are evicted, counted, never blocking.
	RingSize int
	// SampleFlows, in (0, 1], selects a deterministic fraction of flows
	// whose every event is recorded, keyed on the flow hash itself
	// (flow < fraction·2^64) — so the selected set is a pure function of
	// flow identity, bit-identical at any worker count. 1 records every
	// flow ("all" tracing); 0 (the default) disables flow-keyed
	// sampling. Composes with head sampling and tags.
	SampleFlows float64
}

// TraceRec is one sampled packet event with per-hop delay attribution:
// the *_ns components decompose the virtual time since the journey's
// previous event, so summing them over a fully recorded journey yields
// the end-to-end delay exactly.
type TraceRec struct {
	// TimeNanos is the virtual time of the event.
	TimeNanos int64 `json:"ts"`
	// Flow is the keyed flow hash (netem computes it from the canonical
	// FlowKey); 0 if the packet had no parseable flow.
	Flow uint64 `json:"flow"`
	// Journey identifies the packet journey the event belongs to,
	// stamped at origination.
	Journey uint64 `json:"journey"`
	// Seq is the stripe-local emission sequence (merge tiebreaker).
	Seq uint64 `json:"seq"`
	// Node is the stable node id where the event fired.
	Node int32 `json:"node"`
	// Shard is the stripe (netem shard) that recorded the event.
	Shard int32 `json:"shard"`
	// Size is the packet length in bytes.
	Size int32 `json:"size"`
	// Kind is the trace kind (netem.TraceKind numbering).
	Kind uint8 `json:"kind"`
	// QueueNanos..ProcNanos attribute the delay since the journey's
	// previous event: egress-queue wait, link serialization, link
	// propagation, policy-imposed delay, endpoint processing.
	QueueNanos     int64 `json:"queue_ns"`
	SerializeNanos int64 `json:"ser_ns"`
	PropagateNanos int64 `json:"prop_ns"`
	PolicyNanos    int64 `json:"policy_ns"`
	ProcNanos      int64 `json:"proc_ns"`
	// Cause and Class attribute the policy component (netem.PolicyCause
	// numbering / dpi class numbering).
	Cause uint8 `json:"cause,omitempty"`
	Class uint8 `json:"class,omitempty"`
}

// AttrTotalNanos sums the attributed delay components.
func (r *TraceRec) AttrTotalNanos() int64 {
	return r.QueueNanos + r.SerializeNanos + r.PropagateNanos + r.PolicyNanos + r.ProcNanos
}

// NewFlightRecorder creates a flight recorder.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 64
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	f := &FlightRecorder{
		sampleEvery: uint64(cfg.SampleEvery),
		ringSize:    cfg.RingSize,
		tags:        make(map[uint64]struct{}),
	}
	switch {
	case cfg.SampleFlows >= 1:
		f.flowAll = true
	case cfg.SampleFlows > 0:
		f.flowBar = uint64(cfg.SampleFlows * float64(^uint64(0)))
	}
	return f
}

// Tag marks a flow hash as always-recorded. Call during setup, before
// the run: the tag set is read lock-free from every stripe.
func (f *FlightRecorder) Tag(flow uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tags[flow] = struct{}{}
	f.tagged = true
	for _, st := range f.stripes {
		st.tagged = true
	}
}

// Stripe returns (creating as needed) the write stripe for shard i.
// Stripe pointers remain valid forever.
func (f *FlightRecorder) Stripe(i int) *FlightStripe {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.stripes) <= i {
		f.stripes = append(f.stripes, &FlightStripe{
			fr:     f,
			shard:  int32(len(f.stripes)),
			ring:   make([]TraceRec, 0, f.ringSize),
			tagged: f.tagged,
		})
	}
	return f.stripes[i]
}

// FlightStripe is one shard's ring. Single-writer, like a Counter
// stripe: only the owning shard records into it during a run.
type FlightStripe struct {
	fr     *FlightRecorder
	shard  int32
	tagged bool

	ring    []TraceRec
	w       int // next write slot once the ring is full
	seen    uint64
	sampled uint64
	evicted uint64
	seq     uint64
}

// Sample counts one event and reports whether head sampling selects it.
// The decision depends only on the stripe's own event count — replay-
// stable at any worker count.
func (st *FlightStripe) Sample() bool {
	st.seen++
	return st.fr.sampleEvery == 1 || st.seen%st.fr.sampleEvery == 1
}

// Tagged reports whether any flow tags exist (a cheap pre-check so the
// caller can skip flow hashing when the event is unsampled and no tags
// are registered).
func (st *FlightStripe) Tagged() bool { return st.tagged }

// FlowAware reports whether any per-flow selection — tags or flow-keyed
// sampling — exists, so callers can skip flow hashing entirely when the
// event lost head sampling and no flow could rescue it.
func (st *FlightStripe) FlowAware() bool {
	return st.tagged || st.fr.flowAll || st.fr.flowBar > 0
}

// WantFlow reports whether per-flow selection records events of flow:
// flow-keyed sampling (a deterministic threshold on the hash) or an
// explicit tag.
func (st *FlightStripe) WantFlow(flow uint64) bool {
	if st.fr.flowAll || flow < st.fr.flowBar {
		return true
	}
	return st.TaggedFlow(flow)
}

// TaggedFlow reports whether the given flow hash is tagged.
func (st *FlightStripe) TaggedFlow(flow uint64) bool {
	if !st.tagged {
		return false
	}
	_, ok := st.fr.tags[flow]
	return ok
}

// Record appends rec to the ring, evicting the oldest event when full.
// The stripe stamps Shard and Seq itself.
func (st *FlightStripe) Record(rec TraceRec) {
	st.seq++
	st.sampled++
	rec.Shard = st.shard
	rec.Seq = st.seq
	if len(st.ring) < cap(st.ring) {
		st.ring = append(st.ring, rec)
		return
	}
	st.ring[st.w] = rec
	st.w = (st.w + 1) % len(st.ring)
	st.evicted++
}

// Reset clears the stripe's ring and counters (between experiment runs).
func (st *FlightStripe) Reset() {
	st.ring = st.ring[:0]
	st.w = 0
	st.seen, st.sampled, st.evicted, st.seq = 0, 0, 0, 0
}

// Events returns every retained event across stripes, merged into the
// engine's canonical (time, shard, seq) total order — independent of
// worker count. Call at quiescence (post-run or an epoch barrier).
func (f *FlightRecorder) Events() []TraceRec {
	f.mu.Lock()
	stripes := make([]*FlightStripe, len(f.stripes))
	copy(stripes, f.stripes)
	f.mu.Unlock()
	var out []TraceRec
	for _, st := range stripes {
		out = append(out, st.ring...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TimeNanos != b.TimeNanos {
			return a.TimeNanos < b.TimeNanos
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	return out
}

// Reset clears every stripe (between runs sharing a recorder).
func (f *FlightRecorder) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, st := range f.stripes {
		st.Reset()
	}
}

// Seen totals events offered across stripes (atomic loads; exact at
// quiescence).
func (f *FlightRecorder) Seen() uint64 { return f.sumStripes(func(st *FlightStripe) *uint64 { return &st.seen }) }

// Sampled totals events recorded across stripes.
func (f *FlightRecorder) Sampled() uint64 {
	return f.sumStripes(func(st *FlightStripe) *uint64 { return &st.sampled })
}

// Evicted totals ring evictions across stripes.
func (f *FlightRecorder) Evicted() uint64 {
	return f.sumStripes(func(st *FlightStripe) *uint64 { return &st.evicted })
}

func (f *FlightRecorder) sumStripes(field func(*FlightStripe) *uint64) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n uint64
	for _, st := range f.stripes {
		n += atomic.LoadUint64(field(st))
	}
	return n
}

// Register exposes the recorder's own health counters on a registry.
func (f *FlightRecorder) Register(reg *Registry) {
	reg.CounterFunc("obs_flight_seen_total",
		"Packet events offered to the flight recorder.", f.Seen)
	reg.CounterFunc("obs_flight_recorded_total",
		"Packet events retained by sampling or flow tags.", f.Sampled)
	reg.CounterFunc("obs_flight_evicted_total",
		"Recorded events evicted by ring wrap.", f.Evicted)
}
