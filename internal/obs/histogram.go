package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Log-bucketed histograms. Values are non-negative integers (typically
// nanoseconds or bytes) mapped to buckets of geometrically growing
// width: values below 16 get exact buckets, and every octave above that
// is split into 8 sub-buckets, bounding the relative quantile error at
// 12.5% while keeping the whole stripe a flat array — Observe is a
// bounds-checked pair of increments, zero allocations, no atomics.

// histBuckets covers the full uint64 range at 8 sub-buckets per octave:
// 16 exact small-value buckets plus 60 octaves above 2^4.
const histBuckets = 16 + 60*8

// bucketOf maps a value to its bucket index (monotone in v).
func bucketOf(v uint64) int {
	if v < 16 {
		return int(v)
	}
	k := bits.Len64(v) // >= 5
	return int(k-4)*8 + int((v>>(uint(k)-4))&7) + 8
}

// bucketBounds returns the inclusive value range covered by bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i < 16 {
		return uint64(i), uint64(i)
	}
	j := i - 16
	oct, sub := uint(j/8), uint64(j%8)
	width := uint64(2) << oct
	lo = (16 << oct) + sub*width
	return lo, lo + width - 1
}

// HistStripe is one write stripe of a histogram family: single-writer,
// like Counter. The stripe is ~4KB, so padding between stripes is moot.
type HistStripe struct {
	count   uint64
	sum     uint64
	buckets [histBuckets]uint64
}

// Observe records a value (negative values clamp to zero).
func (h *HistStripe) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += uint64(v)
	h.buckets[bucketOf(uint64(v))]++
}

// ObserveDuration records a duration in nanoseconds.
func (h *HistStripe) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// HistogramVec is a histogram family of single-writer stripes.
type HistogramVec struct {
	fam     *family
	mu      sync.Mutex
	stripes []*HistStripe
}

// Stripe returns stripe i, growing the family as needed.
func (v *HistogramVec) Stripe(i int) *HistStripe {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.stripes) <= i {
		v.stripes = append(v.stripes, &HistStripe{})
	}
	return v.stripes[i]
}

// NewStripe appends and returns a fresh stripe.
func (v *HistogramVec) NewStripe() *HistStripe {
	v.mu.Lock()
	defer v.mu.Unlock()
	h := &HistStripe{}
	v.stripes = append(v.stripes, h)
	return h
}

// HistSnap is a merged histogram: dense buckets plus precomputed
// summary quantiles (the log-bucket transform bounds their relative
// error at 12.5%).
type HistSnap struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets is the dense merged bucket array (internal resolution;
	// the Prometheus writer renders it cumulatively).
	Buckets []uint64 `json:"-"`
}

// Snap merges the family's stripes (atomic loads; exact at quiescence).
func (v *HistogramVec) Snap() *HistSnap {
	v.mu.Lock()
	stripes := make([]*HistStripe, len(v.stripes))
	copy(stripes, v.stripes)
	v.mu.Unlock()
	s := &HistSnap{Buckets: make([]uint64, histBuckets)}
	for _, h := range stripes {
		s.Count += atomic.LoadUint64(&h.count)
		s.Sum += atomic.LoadUint64(&h.sum)
		for i := range h.buckets {
			s.Buckets[i] += atomic.LoadUint64(&h.buckets[i])
		}
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the merged
// buckets: nearest-rank walk, answering the midpoint of the covering
// bucket (exact for values below 16).
func (s *HistSnap) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum > rank {
			lo, hi := bucketBounds(i)
			return float64(lo+hi) / 2
		}
	}
	return 0
}

// Mean returns the exact mean of observed values.
func (s *HistSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
