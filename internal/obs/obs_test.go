package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterStripesMerge(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("test_events_total", "events")
	a, b := v.Stripe(0), v.Stripe(3)
	a.Inc()
	a.Add(9)
	b.Add(90)
	if got := v.Value(); got != 100 {
		t.Fatalf("merged counter = %d, want 100", got)
	}
	if v.Stripe(0) != a {
		t.Fatal("Stripe(0) not stable across calls")
	}
	if r.Counter("test_events_total", "events") != v {
		t.Fatal("re-registration did not return the existing vec")
	}
}

func TestGaugeStripesMerge(t *testing.T) {
	r := NewRegistry()
	v := r.Gauge("test_depth", "depth")
	v.Stripe(0).Set(7)
	v.Stripe(1).Set(5)
	v.Stripe(1).Add(-2)
	if got := v.Value(); got != 10 {
		t.Fatalf("merged gauge = %d, want 10", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_x", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name", "")
}

// TestAtomicStripesConcurrent exercises the atomic-stripe path under
// concurrent writers and snapshot readers; run with -race it proves
// the daemon path is data-race free.
func TestAtomicStripesConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("test_concurrent_total", "")
	g := r.Gauge("test_concurrent_gauge", "")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			c := v.AtomicStripe(w)
			ag := g.AtomicStripe(w)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				ag.Add(1)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := v.Value(); got != workers*perWorker {
		t.Fatalf("concurrent counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("concurrent gauge = %d, want %d", got, workers*perWorker)
	}
}

func TestBucketMonotoneAndInvertible(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 40, 1<<63 + 1} {
		i := bucketOf(v)
		if i < prev {
			t.Fatalf("bucketOf(%d)=%d below previous %d: not monotone", v, i, prev)
		}
		prev = i
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d bounds [%d,%d]", v, i, lo, hi)
		}
		if i >= histBuckets {
			t.Fatalf("bucketOf(%d)=%d out of range %d", v, i, histBuckets)
		}
	}
	// Exhaustive monotonicity + containment over a dense small range.
	prev = 0
	for v := uint64(0); v < 1<<14; v++ {
		i := bucketOf(v)
		if i < prev {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		prev = i
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d bounds [%d,%d]", v, i, lo, hi)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_delay_ns", "")
	st := h.Stripe(0)
	// Uniform 1..10000: p50 ≈ 5000, p95 ≈ 9500, p99 ≈ 9900, each
	// within the log-bucket's 12.5% relative error.
	for v := int64(1); v <= 10000; v++ {
		st.Observe(v)
	}
	s := h.Snap()
	if s.Count != 10000 {
		t.Fatalf("count = %d", s.Count)
	}
	checks := []struct {
		q    float64
		want float64
	}{{0.50, 5000}, {0.95, 9500}, {0.99, 9900}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want*0.85 || got > c.want*1.15 {
			t.Errorf("q%.2f = %.0f, want %.0f ± 15%%", c.q, got, c.want)
		}
	}
	if mean := s.Mean(); mean < 5000 || mean > 5001 {
		t.Errorf("mean = %f, want 5000.5", mean)
	}
	// Small values are exact.
	st2 := r.Histogram("test_small_ns", "").Stripe(0)
	for i := 0; i < 100; i++ {
		st2.Observe(7)
	}
	if got := r.Histogram("test_small_ns", "").Snap().Quantile(0.5); got != 7 {
		t.Errorf("exact small-bucket quantile = %v, want 7", got)
	}
}

func TestHistogramStripesMerge(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_merge_ns", "")
	h.Stripe(0).Observe(10)
	h.Stripe(1).Observe(10)
	h.Stripe(1).ObserveDuration(20 * time.Nanosecond)
	s := h.Snap()
	if s.Count != 3 || s.Sum != 40 {
		t.Fatalf("merged hist count=%d sum=%d, want 3/40", s.Count, s.Sum)
	}
}

func TestSnapshotAndVolatile(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "a").Stripe(0).Add(5)
	r.GaugeFunc("test_wall", "w", func() float64 { return 1 }, Volatile())
	r.CounterFunc("test_fn_total", "f", func() uint64 { return 42 })
	live := r.Snapshot()
	if m := live.Get("test_a_total"); m == nil || m.Value != 5 {
		t.Fatalf("snapshot missing test_a_total=5: %+v", m)
	}
	if m := live.Get("test_fn_total"); m == nil || m.Value != 42 {
		t.Fatalf("snapshot missing func counter: %+v", m)
	}
	if live.Get("test_wall") == nil {
		t.Fatal("live snapshot must include volatile families")
	}
	det := r.snapshotAt(123, true)
	if det.Get("test_wall") != nil {
		t.Fatal("deterministic snapshot must exclude volatile families")
	}
	if det.TimeNanos != 123 {
		t.Fatalf("ts = %d", det.TimeNanos)
	}
}

func TestRecorderRingsAndInterval(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ticks_total", "").Stripe(0)
	rec := NewRecorder(r, RecorderConfig{RingSize: 4, Interval: 10 * time.Nanosecond})
	for now := int64(0); now < 100; now += 5 {
		c.Inc()
		rec.Tick(now)
	}
	// Interval 10ns over ticks every 5ns: every other tick is gated.
	if got := rec.Ticks(); got != 10 {
		t.Fatalf("ticks = %d, want 10", got)
	}
	s := rec.SeriesByName("test_ticks_total")
	if s == nil {
		t.Fatal("series missing")
	}
	times, vals := s.Points()
	if len(times) != 4 {
		t.Fatalf("ring len = %d, want 4", len(times))
	}
	// Last four samples at t=60,70,80,90 carrying values 13,15,17,19.
	wantT := []int64{60, 70, 80, 90}
	wantV := []float64{13, 15, 17, 19}
	for i := range wantT {
		if times[i] != wantT[i] || vals[i] != wantV[i] {
			t.Fatalf("point %d = (%d,%v), want (%d,%v)", i, times[i], vals[i], wantT[i], wantV[i])
		}
	}
}

func TestRecorderHistogramSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h_ns", "").Stripe(0)
	rec := NewRecorder(r, RecorderConfig{})
	h.Observe(100)
	rec.Tick(1)
	for _, name := range []string{"test_h_ns.count", "test_h_ns.p50", "test_h_ns.p95", "test_h_ns.p99"} {
		if rec.SeriesByName(name) == nil {
			t.Errorf("missing histogram series %s", name)
		}
	}
}

func TestFlightRecorderSamplingAndTags(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SampleEvery: 4, RingSize: 8})
	fr.Tag(77)
	st := fr.Stripe(0)
	recorded := 0
	for i := 0; i < 16; i++ {
		take := st.Sample()
		flow := uint64(i) // pretend hash
		if take || st.TaggedFlow(flow) {
			st.Record(TraceRec{TimeNanos: int64(i), Flow: flow})
			recorded++
		}
	}
	// Head sampling takes events 1,5,9,13 (4); none of flows 0..15 is 77.
	if recorded != 4 {
		t.Fatalf("recorded %d, want 4", recorded)
	}
	st2 := fr.Stripe(1)
	if !st2.Tagged() || !st2.TaggedFlow(77) || st2.TaggedFlow(78) {
		t.Fatal("tag set not visible from new stripe")
	}
	if fr.Seen() != 16 || fr.Sampled() != 4 {
		t.Fatalf("seen=%d sampled=%d", fr.Seen(), fr.Sampled())
	}
}

func TestFlightRecorderRingBoundAndMerge(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SampleEvery: 1, RingSize: 4})
	a, b := fr.Stripe(0), fr.Stripe(1)
	for i := 0; i < 10; i++ {
		a.Sample()
		a.Record(TraceRec{TimeNanos: int64(100 + i)})
	}
	b.Sample()
	b.Record(TraceRec{TimeNanos: 105})
	evs := fr.Events()
	if len(evs) != 5 {
		t.Fatalf("merged events = %d, want 5 (ring bound 4 + 1)", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		p, q := evs[i-1], evs[i]
		if q.TimeNanos < p.TimeNanos ||
			(q.TimeNanos == p.TimeNanos && q.Shard < p.Shard) {
			t.Fatalf("merge order violated at %d: %+v then %+v", i, p, q)
		}
	}
	if fr.Evicted() != 6 {
		t.Fatalf("evicted = %d, want 6", fr.Evicted())
	}
}

func TestStreamerBackpressure(t *testing.T) {
	st := NewStreamer()
	if st.Active() {
		t.Fatal("no subscribers yet")
	}
	sub := st.Subscribe(2)
	if !st.Active() {
		t.Fatal("subscriber not visible")
	}
	for i := 0; i < 5; i++ {
		st.Publish([]byte("x\n")) // never blocks
	}
	if d := st.DroppedFrames(); d != 3 {
		t.Fatalf("dropped = %d, want 3 (buffer 2 of 5)", d)
	}
	if sub.Dropped() != 3 {
		t.Fatalf("sub dropped = %d", sub.Dropped())
	}
	sub.Close()
	if st.Active() {
		t.Fatal("closed subscriber still counted")
	}
	st.Publish([]byte("y\n")) // no subscribers: still safe
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`test_seen_total{class="voip"}`, "per-class").Stripe(0).Add(3)
	r.Counter(`test_seen_total{class="bulk"}`, "per-class").Stripe(0).Add(4)
	r.Gauge("test_depth", "queue depth").Stripe(0).Set(-2)
	r.Histogram("test_lat_ns", "latency").Stripe(0).Observe(20)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_seen_total counter",
		`test_seen_total{class="voip"} 3`,
		`test_seen_total{class="bulk"} 4`,
		"# TYPE test_depth gauge",
		"test_depth -2",
		"# TYPE test_lat_ns histogram",
		`test_lat_ns_bucket{le="+Inf"} 1`,
		"test_lat_ns_sum 20",
		"test_lat_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE test_seen_total"); n != 1 {
		t.Errorf("TYPE line for shared base emitted %d times, want 1", n)
	}
}

func TestMarshalFrame(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "").Stripe(0).Add(2)
	r.Histogram("test_h_ns", "").Stripe(0).Observe(5)
	b := MarshalFrame(r.snapshotAt(9, false))
	s := string(b)
	if !strings.HasSuffix(s, "\n") {
		t.Fatal("frame not newline-terminated")
	}
	for _, want := range []string{`"ts":9`, `"test_a_total":2`, `"test_h_ns"`, `"count":1`} {
		if !strings.Contains(s, want) {
			t.Errorf("frame missing %q: %s", want, s)
		}
	}
}

func TestZeroAllocHotPath(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	r := NewRegistry()
	c := r.Counter("test_alloc_total", "").Stripe(0)
	g := r.Gauge("test_alloc_depth", "").Stripe(0)
	h := r.Histogram("test_alloc_ns", "").Stripe(0)
	ac := r.Counter("test_alloc_atomic_total", "").AtomicStripe(1)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(5)
		h.Observe(123456)
		ac.Inc()
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", n)
	}
}
