package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Recorder samples every registered, non-volatile family into fixed-
// size time-series rings. It never drives its own clock: the owner
// ticks it from an existing synchronization point — the netem engine's
// epoch barrier (Simulator.OnBarrier) — so recording adds no barriers
// and cannot perturb the event schedule. Sample times are virtual, and
// sampled values are pure functions of deterministic sim state, so a
// seeded run's rings are bit-identical at any worker count.
//
// For live export while a deterministic (plain-stripe) sim is running,
// the recorder can additionally publish a merged Snapshot at each tick
// behind an atomic pointer (EnablePublish) and push NDJSON frames to a
// Streamer; both are read-side conveniences that do not feed back into
// the sim.
type Recorder struct {
	reg      *Registry
	ringSize int
	interval int64 // min virtual nanos between samples

	mu       sync.Mutex
	series   []*Series
	byName   map[string]*Series
	lastTick int64
	started  bool
	ticks    atomic.Uint64

	publish  atomic.Bool
	latest   atomic.Pointer[Snapshot]
	streamer *Streamer
}

// RecorderConfig sizes a Recorder.
type RecorderConfig struct {
	// RingSize bounds each series in points (default 512).
	RingSize int
	// Interval is the minimum virtual time between samples; 0 samples
	// at every barrier.
	Interval time.Duration
}

// NewRecorder creates a recorder over reg.
func NewRecorder(reg *Registry, cfg RecorderConfig) *Recorder {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 512
	}
	return &Recorder{
		reg:      reg,
		ringSize: cfg.RingSize,
		interval: int64(cfg.Interval),
		byName:   make(map[string]*Series),
	}
}

// Registry returns the registry the recorder samples.
func (r *Recorder) Registry() *Registry { return r.reg }

// EnablePublish makes each tick additionally publish a merged Snapshot
// (including volatile families) for live HTTP export.
func (r *Recorder) EnablePublish() { r.publish.Store(true) }

// SetStreamer attaches a streamer: each published tick is also offered
// to stream subscribers as one NDJSON frame (non-blocking; slow
// consumers drop frames, the sim never stalls).
func (r *Recorder) SetStreamer(st *Streamer) {
	r.streamer = st
	r.publish.Store(true)
}

// Series is one metric's ring of (virtual time, value) points.
type Series struct {
	// Name is the family name, with ".p50"/".p95"/".p99" suffixes for
	// histogram quantile series.
	Name  string
	times []int64
	vals  []float64
	w     int
	full  bool
}

// Points returns the ring unrolled oldest-first (copies).
func (s *Series) Points() (times []int64, vals []float64) {
	if !s.full {
		return append([]int64(nil), s.times...), append([]float64(nil), s.vals...)
	}
	n := len(s.times)
	times = make([]int64, 0, n)
	vals = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		j := (s.w + i) % n
		times = append(times, s.times[j])
		vals = append(vals, s.vals[j])
	}
	return times, vals
}

// Len reports retained points.
func (s *Series) Len() int {
	if s.full {
		return len(s.times)
	}
	return len(s.times)
}

func (s *Series) push(t int64, v float64, ringSize int) {
	if len(s.times) < ringSize {
		s.times = append(s.times, t)
		s.vals = append(s.vals, v)
		return
	}
	s.full = true
	s.times[s.w] = t
	s.vals[s.w] = v
	s.w = (s.w + 1) % len(s.times)
}

// Tick samples every non-volatile family at virtual time nowNanos.
// Called from the engine's barrier (single-threaded, writers
// quiescent). Interval gating keys on virtual time, so tick counts are
// a function of the simulated timeline, not of execution.
func (r *Recorder) Tick(nowNanos int64) {
	r.mu.Lock()
	if r.started && r.interval > 0 && nowNanos-r.lastTick < r.interval {
		r.mu.Unlock()
		return
	}
	r.lastTick = nowNanos
	r.started = true
	r.ticks.Add(1)
	snap := r.reg.snapshotAt(nowNanos, true)
	for _, m := range snap.Metrics {
		if m.Hist != nil {
			r.seriesFor(m.Name+".count").push(nowNanos, float64(m.Hist.Count), r.ringSize)
			r.seriesFor(m.Name+".p50").push(nowNanos, m.Hist.P50, r.ringSize)
			r.seriesFor(m.Name+".p95").push(nowNanos, m.Hist.P95, r.ringSize)
			r.seriesFor(m.Name+".p99").push(nowNanos, m.Hist.P99, r.ringSize)
			continue
		}
		r.seriesFor(m.Name).push(nowNanos, m.Value, r.ringSize)
	}
	r.mu.Unlock()

	if r.publish.Load() {
		full := r.reg.snapshotAt(nowNanos, false)
		r.latest.Store(full)
		if st := r.streamer; st != nil && st.Active() {
			st.Publish(MarshalFrame(full))
		}
	}
}

func (r *Recorder) seriesFor(name string) *Series {
	s, ok := r.byName[name]
	if !ok {
		s = &Series{Name: name}
		r.byName[name] = s
		r.series = append(r.series, s)
	}
	return s
}

// Ticks reports how many samples were taken.
func (r *Recorder) Ticks() uint64 { return r.ticks.Load() }

// Series returns the recorded series in first-seen order.
func (r *Recorder) Series() []*Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Series, len(r.series))
	copy(out, r.series)
	return out
}

// SeriesByName returns one series, or nil.
func (r *Recorder) SeriesByName(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// Snapshot implements Source: the last published snapshot if publishing
// is on, else a live merge of the registry. Mid-run scrapes of a plain-
// stripe sim should come from published snapshots (barrier-consistent);
// the live fallback serves the post-run and pre-run cases.
func (r *Recorder) Snapshot() *Snapshot {
	if s := r.latest.Load(); s != nil {
		return s
	}
	return r.reg.Snapshot()
}

// Register exposes recorder health on the registry it samples.
func (r *Recorder) Register() {
	r.reg.CounterFunc("obs_recorder_ticks_total",
		"Samples the epoch recorder has taken.", r.Ticks, Volatile())
}
