package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// HTTP export surface. Both daemons mount this behind their -metrics
// flag:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (ts + merged metric values)
//	/stream        NDJSON frames, one per published tick (backpressured)
//	/flight.json   merged flight-recorder events (if attached)
//	/trace.json    assembled spans as Chrome trace-event JSON (Perfetto)
//	/trace         merged trace events as NDJSON
//	/debug/pprof/  the standard pprof handlers
//
// The Source abstracts where snapshots come from: a live *Registry for
// the atomic-stripe daemon path, a *Recorder (last barrier-published
// snapshot) for deterministic plain-stripe sims.

// Source yields merged snapshots for export.
type Source interface {
	Snapshot() *Snapshot
}

// HandlerConfig wires the export surface.
type HandlerConfig struct {
	// Source yields snapshots for /metrics and /metrics.json.
	Source Source
	// Streamer, if set, backs /stream.
	Streamer *Streamer
	// Flight, if set, backs /flight.json.
	Flight *FlightRecorder
}

// NewHandler builds the export mux.
func NewHandler(cfg HandlerConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, cfg.Source.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Source.Snapshot())
	})
	if cfg.Streamer != nil {
		mux.HandleFunc("/stream", func(w http.ResponseWriter, req *http.Request) {
			flusher, ok := w.(http.Flusher)
			if !ok {
				http.Error(w, "streaming unsupported", http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			flusher.Flush()
			sub := cfg.Streamer.Subscribe(16)
			defer sub.Close()
			ctx := req.Context()
			for {
				select {
				case <-ctx.Done():
					return
				case frame, ok := <-sub.Ch():
					if !ok {
						return
					}
					if _, err := w.Write(frame); err != nil {
						return
					}
					flusher.Flush()
				}
			}
		})
	}
	if cfg.Flight != nil {
		mux.HandleFunc("/flight.json", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(cfg.Flight.Events())
		})
		mux.HandleFunc("/trace.json", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeTrace(w, AssembleSpans(cfg.Flight.Events()))
		})
		mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = WriteTraceNDJSON(w, cfg.Flight.Events())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
