package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Streamer fans metric frames out to NDJSON subscribers with explicit
// backpressure: Publish never blocks — a subscriber whose buffered
// channel is full loses that frame and the loss is counted. The
// publisher (an epoch barrier or a daemon ticker) therefore can never
// be stalled by a slow scrape client.
type Streamer struct {
	mu    sync.Mutex
	subs  map[*StreamSub]struct{}
	nsubs atomic.Int32

	dropped   atomic.Uint64
	published atomic.Uint64
}

// StreamSub is one subscriber's bounded frame queue.
type StreamSub struct {
	st      *Streamer
	ch      chan []byte
	dropped atomic.Uint64
	once    sync.Once
}

// NewStreamer creates a streamer with no subscribers.
func NewStreamer() *Streamer {
	return &Streamer{subs: make(map[*StreamSub]struct{})}
}

// Active reports whether any subscriber is attached — publishers check
// it to skip frame marshalling entirely when nobody is listening.
func (s *Streamer) Active() bool { return s.nsubs.Load() > 0 }

// Subscribe attaches a subscriber with the given frame buffer (min 1).
func (s *Streamer) Subscribe(buf int) *StreamSub {
	if buf < 1 {
		buf = 1
	}
	sub := &StreamSub{st: s, ch: make(chan []byte, buf)}
	s.mu.Lock()
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	s.nsubs.Add(1)
	return sub
}

// Ch returns the subscriber's frame channel. It is closed by Close.
func (sub *StreamSub) Ch() <-chan []byte { return sub.ch }

// Dropped reports frames this subscriber lost to backpressure.
func (sub *StreamSub) Dropped() uint64 { return sub.dropped.Load() }

// Close detaches the subscriber and closes its channel.
func (sub *StreamSub) Close() {
	sub.once.Do(func() {
		s := sub.st
		s.mu.Lock()
		delete(s.subs, sub)
		s.mu.Unlock()
		s.nsubs.Add(-1)
		close(sub.ch)
	})
}

// Publish offers one frame to every subscriber, never blocking: a full
// subscriber queue drops the frame and increments the drop counters.
func (s *Streamer) Publish(frame []byte) {
	s.published.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	for sub := range s.subs {
		select {
		case sub.ch <- frame:
		default:
			sub.dropped.Add(1)
			s.dropped.Add(1)
		}
	}
}

// DroppedFrames totals frames lost to slow subscribers.
func (s *Streamer) DroppedFrames() uint64 { return s.dropped.Load() }

// Published totals frames offered.
func (s *Streamer) Published() uint64 { return s.published.Load() }

// Register exposes stream health on a registry. The counters are
// volatile: whether a frame drops depends on wall-clock consumer speed.
func (s *Streamer) Register(reg *Registry) {
	reg.CounterFunc("obs_stream_frames_total",
		"Metric frames offered to stream subscribers.", s.Published, Volatile())
	reg.CounterFunc("obs_stream_dropped_frames_total",
		"Metric frames dropped by slow stream subscribers.", s.DroppedFrames, Volatile())
	reg.GaugeFunc("obs_stream_subscribers",
		"Attached stream subscribers.", func() float64 { return float64(s.nsubs.Load()) }, Volatile())
}

// frame is the NDJSON wire form of a snapshot: flat name→value map plus
// histogram summaries, one JSON object per line.
type frame struct {
	TS      int64                  `json:"ts"`
	Metrics map[string]float64     `json:"metrics"`
	Hists   map[string]frameHist   `json:"hists,omitempty"`
}

type frameHist struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// MarshalFrame renders a snapshot as one newline-terminated NDJSON
// frame.
func MarshalFrame(s *Snapshot) []byte {
	f := frame{TS: s.TimeNanos, Metrics: make(map[string]float64, len(s.Metrics))}
	for _, m := range s.Metrics {
		if m.Hist != nil {
			if f.Hists == nil {
				f.Hists = make(map[string]frameHist)
			}
			f.Hists[m.Name] = frameHist{
				Count: m.Hist.Count, Mean: m.Hist.Mean(),
				P50: m.Hist.P50, P95: m.Hist.P95, P99: m.Hist.P99,
			}
			continue
		}
		f.Metrics[m.Name] = m.Value
	}
	b, err := json.Marshal(f)
	if err != nil {
		return []byte("{}\n")
	}
	return append(b, '\n')
}
