package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// mkJourney appends one synthetic journey's events for flow/journey ids:
// a send at start, one forward, and a deliver, with attribution
// components that sum exactly to the hop gaps.
func mkJourney(evs []TraceRec, flow, journey uint64, start int64) []TraceRec {
	return append(evs,
		TraceRec{TimeNanos: start, Flow: flow, Journey: journey, Node: 1, Size: 64, Kind: KindSend},
		TraceRec{TimeNanos: start + 1_500_000, Flow: flow, Journey: journey, Node: 2, Size: 64,
			Kind: KindForward, QueueNanos: 200_000, SerializeNanos: 300_000, PropagateNanos: 1_000_000},
		TraceRec{TimeNanos: start + 3_000_000, Flow: flow, Journey: journey, Node: 3, Size: 64,
			Kind: KindDeliver, PropagateNanos: 750_000, PolicyNanos: 750_000, Cause: 4, Class: 2},
	)
}

// TestAssembleSpans pins the grouping contract: events group by flow
// then journey, keep their merged order inside each journey, and the
// synthetic journeys satisfy the attribution-sum invariant they were
// built to.
func TestAssembleSpans(t *testing.T) {
	var evs []TraceRec
	evs = mkJourney(evs, 0xAA, 1, 10_000_000)
	evs = mkJourney(evs, 0xBB, 7, 11_000_000)
	evs = mkJourney(evs, 0xAA, 2, 12_000_000)

	spans := AssembleSpans(evs)
	if len(spans) != 2 {
		t.Fatalf("assembled %d spans, want 2 flows", len(spans))
	}
	if spans[0].Flow != 0xAA || len(spans[0].Journeys) != 2 {
		t.Fatalf("span 0 = flow %x with %d journeys, want flow aa with 2", spans[0].Flow, len(spans[0].Journeys))
	}
	if spans[1].Flow != 0xBB || len(spans[1].Journeys) != 1 {
		t.Fatalf("span 1 = flow %x with %d journeys, want flow bb with 1", spans[1].Flow, len(spans[1].Journeys))
	}
	for _, sp := range spans {
		for i := range sp.Journeys {
			j := &sp.Journeys[i]
			if !j.Complete() || !j.Delivered() {
				t.Fatalf("flow %x journey %d: complete=%v delivered=%v, want both", sp.Flow, j.ID, j.Complete(), j.Delivered())
			}
			if len(j.Hops) != 3 {
				t.Fatalf("flow %x journey %d: %d hops, want 3", sp.Flow, j.ID, len(j.Hops))
			}
			if sum, e2e := j.AttrSumNanos(), j.EndToEndNanos(); sum != e2e {
				t.Fatalf("flow %x journey %d: components sum to %dns, end-to-end %dns", sp.Flow, j.ID, sum, e2e)
			}
		}
	}
}

// TestJourneyCompleteness pins the edge cases Complete must reject: a
// journey whose head was clipped (no send) and one still in flight (no
// deliver or drop).
func TestJourneyCompleteness(t *testing.T) {
	headless := Journey{Hops: []TraceRec{
		{TimeNanos: 1, Kind: KindForward},
		{TimeNanos: 2, Kind: KindDeliver},
	}}
	if headless.Complete() {
		t.Error("journey without a send event must not be Complete")
	}
	inflight := Journey{Hops: []TraceRec{
		{TimeNanos: 1, Kind: KindSend},
		{TimeNanos: 2, Kind: KindForward},
	}}
	if inflight.Complete() {
		t.Error("journey without a terminal event must not be Complete")
	}
	dropped := Journey{Hops: []TraceRec{
		{TimeNanos: 1, Kind: KindSend},
		{TimeNanos: 2, Kind: KindDropPolicy},
	}}
	if !dropped.Complete() || dropped.Delivered() {
		t.Error("journey ending in a drop is Complete but not Delivered")
	}
}

// TestChromeTraceRoundTrip renders assembled spans and feeds the result
// back through the validator — the exact pipeline behind /trace.json,
// `neutsim -traceout`, and the CI trace smoke.
func TestChromeTraceRoundTrip(t *testing.T) {
	var evs []TraceRec
	evs = mkJourney(evs, 0xAA, 1, 10_000_000)
	evs = mkJourney(evs, 0xBB, 7, 11_000_000)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, AssembleSpans(evs)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var slices, instants, causes int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if !strings.Contains(ev.Name, "→") {
				t.Errorf("slice named %q, want hop→hop form", ev.Name)
			}
		case "i":
			instants++
		}
		if ev.Args["cause"] == "class-delay" {
			causes++
		}
	}
	// Two 3-hop journeys: 2 slices each, plus a send instant each.
	if slices != 4 || instants != 2 {
		t.Errorf("rendered %d slices and %d instants, want 4 and 2", slices, instants)
	}
	if causes == 0 {
		t.Error("no rendered event carries the class-delay cause arg")
	}
}

// TestValidateChromeTraceRejections drives the validator through each
// schema violation it exists to catch.
func TestValidateChromeTraceRejections(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"empty", `{"traceEvents":[]}`, "empty"},
		{"missing-ph", `{"traceEvents":[{"name":"x","ts":1,"pid":0,"tid":0}]}`, "missing ph"},
		{"missing-name", `{"traceEvents":[{"ph":"i","ts":1,"pid":0,"tid":0}]}`, "missing name"},
		{"bad-phase", `{"traceEvents":[{"name":"x","ph":"Q","ts":1,"pid":0,"tid":0}]}`, "unsupported ph"},
		{"missing-ts", `{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0}]}`, "missing ts"},
		{"missing-lane", `{"traceEvents":[{"name":"x","ph":"i","ts":1}]}`, "missing pid/tid"},
		{"ts-regression", `{"traceEvents":[
			{"name":"a","ph":"i","ts":5,"pid":0,"tid":0},
			{"name":"b","ph":"i","ts":4,"pid":1,"tid":0}]}`, "regresses"},
		{"x-without-dur", `{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":0,"tid":0}]}`, "non-negative dur"},
		{"negative-dur", `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":-2,"pid":0,"tid":0}]}`, "non-negative dur"},
		{"e-without-b", `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":0,"tid":0}]}`, "without matching B"},
		{"unmatched-b", `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":0,"tid":0}]}`, "unmatched B"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateChromeTrace([]byte(tc.doc))
			if err == nil {
				t.Fatalf("validator accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	ok := `{"traceEvents":[
		{"name":"p","ph":"M","pid":0},
		{"name":"a","ph":"B","ts":1,"pid":0,"tid":0},
		{"name":"a","ph":"E","ts":2,"pid":0,"tid":0},
		{"name":"s","ph":"X","ts":2,"dur":1,"pid":0,"tid":0}]}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Fatalf("validator rejected a well-formed document: %v", err)
	}
}

// TestWriteTraceNDJSON pins the raw export: one TraceRec object per
// line, attribution fields spelled with their wire names.
func TestWriteTraceNDJSON(t *testing.T) {
	evs := mkJourney(nil, 0xAA, 1, 10_000_000)
	var buf bytes.Buffer
	if err := WriteTraceNDJSON(&buf, evs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(evs) {
		t.Fatalf("wrote %d lines for %d events", len(lines), len(evs))
	}
	for i, line := range lines {
		var rec TraceRec
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec != evs[i] {
			t.Fatalf("line %d round-tripped to %+v, want %+v", i, rec, evs[i])
		}
	}
	if !strings.Contains(lines[2], `"policy_ns"`) || !strings.Contains(lines[2], `"cause"`) {
		t.Fatalf("deliver line missing attribution keys: %s", lines[2])
	}
}
