// Package pushback implements aggregate-based congestion control
// (Mahajan et al., CCR 2002), the DoS remedy the paper invokes for
// neutralizers (§3.6).
//
// A neutralizer flooded with key-setup packets identifies the congestion
// signature — an aggregate such as "key-setup packets to the service
// address", optionally narrowed by a source prefix — and asks upstream
// routers to rate-limit the aggregate. Crucially, and per the paper,
// identification does not depend on trustworthy source addresses: the
// signature works under spoofing because it keys on what can't be forged
// (destination, packet type) and treats source prefixes only as an
// optional refinement.
package pushback

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"netneutral/internal/diffserv"
	"netneutral/internal/netem"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

// Aggregate is a congestion signature.
type Aggregate struct {
	// Dst restricts to one destination (the victim's address), if valid.
	Dst netip.Addr
	// ShimType restricts to one neutralizer message type
	// (shim.TypeInvalid matches any).
	ShimType shim.Type
	// SrcPrefix optionally narrows by source block; the zero Prefix
	// matches any source (the spoofing-robust default).
	SrcPrefix netip.Prefix
}

// Matches reports whether a serialized IPv4 packet belongs to the
// aggregate.
func (a Aggregate) Matches(pkt []byte) bool {
	src, dst, err := wire.IPv4Addrs(pkt)
	if err != nil {
		return false
	}
	if a.Dst.IsValid() && dst != a.Dst {
		return false
	}
	if a.SrcPrefix.IsValid() && !a.SrcPrefix.Contains(src) {
		return false
	}
	if a.ShimType != shim.TypeInvalid {
		proto, err := wire.IPv4Proto(pkt)
		if err != nil || proto != wire.ProtoShim || len(pkt) < wire.IPv4HeaderLen+1 {
			return false
		}
		t, ok := shim.PeekType(pkt[wire.IPv4HeaderLen:])
		if !ok || t != a.ShimType {
			return false
		}
	}
	return true
}

// Detector runs at the victim (the neutralizer's host). Feed it the
// packets the victim had to drop or refuse; Identify proposes the
// dominant aggregate.
type Detector struct {
	mu      sync.Mutex
	samples []sample
	max     int
}

type sample struct {
	src, dst netip.Addr
	shimType shim.Type
}

// NewDetector creates a detector keeping up to max drop samples.
func NewDetector(max int) *Detector {
	if max <= 0 {
		max = 1024
	}
	return &Detector{max: max}
}

// Observe records one refused/dropped packet.
func (d *Detector) Observe(pkt []byte) {
	src, dst, err := wire.IPv4Addrs(pkt)
	if err != nil {
		return
	}
	s := sample{src: src, dst: dst}
	if proto, err := wire.IPv4Proto(pkt); err == nil && proto == wire.ProtoShim &&
		len(pkt) > wire.IPv4HeaderLen {
		if t, ok := shim.PeekType(pkt[wire.IPv4HeaderLen:]); ok {
			s.shimType = t
		}
	}
	d.mu.Lock()
	if len(d.samples) < d.max {
		d.samples = append(d.samples, s)
	} else {
		// Reservoir-free sliding behaviour: overwrite oldest.
		copy(d.samples, d.samples[1:])
		d.samples[len(d.samples)-1] = s
	}
	d.mu.Unlock()
}

// SampleCount reports recorded samples.
func (d *Detector) SampleCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.samples)
}

// Identify returns the aggregate covering at least minFraction of the
// observed drops, preferring the most specific signature: it fixes the
// dominant destination and shim type, then narrows by the dominant /16
// source prefix only if that prefix alone covers minFraction (which a
// spoofing attacker defeats — then the prefix is left empty).
func (d *Detector) Identify(minFraction float64) (Aggregate, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.samples)
	if n == 0 {
		return Aggregate{}, false
	}
	dstCount := map[netip.Addr]int{}
	typeCount := map[shim.Type]int{}
	prefCount := map[netip.Prefix]int{}
	for _, s := range d.samples {
		dstCount[s.dst]++
		typeCount[s.shimType]++
		if p, err := s.src.Prefix(16); err == nil {
			prefCount[p]++
		}
	}
	dst, dc := argmaxAddr(dstCount)
	if float64(dc) < minFraction*float64(n) {
		return Aggregate{}, false
	}
	agg := Aggregate{Dst: dst}
	if t, tc := argmaxType(typeCount); t != shim.TypeInvalid &&
		float64(tc) >= minFraction*float64(n) {
		agg.ShimType = t
	}
	if p, pc := argmaxPrefix(prefCount); float64(pc) >= minFraction*float64(n) {
		agg.SrcPrefix = p
	}
	return agg, true
}

// Reset clears samples.
func (d *Detector) Reset() {
	d.mu.Lock()
	d.samples = nil
	d.mu.Unlock()
}

func argmaxAddr(m map[netip.Addr]int) (netip.Addr, int) {
	keys := make([]netip.Addr, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	var best netip.Addr
	bc := -1
	for _, k := range keys {
		if m[k] > bc {
			best, bc = k, m[k]
		}
	}
	return best, bc
}

func argmaxType(m map[shim.Type]int) (shim.Type, int) {
	var best shim.Type
	bc := -1
	for t := shim.Type(0); t < 32; t++ {
		if c, ok := m[t]; ok && c > bc {
			best, bc = t, c
		}
	}
	return best, bc
}

func argmaxPrefix(m map[netip.Prefix]int) (netip.Prefix, int) {
	keys := make([]netip.Prefix, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	var best netip.Prefix
	bc := -1
	for _, k := range keys {
		if m[k] > bc {
			best, bc = k, m[k]
		}
	}
	return best, bc
}

// Limiter rate-limits an aggregate at an upstream router. It implements
// a netem.TransitHook factory with an expiry: pushback state is soft.
type Limiter struct {
	mu      sync.Mutex
	agg     Aggregate
	bucket  *diffserv.TokenBucket
	expires time.Time
	Dropped uint64
	Passed  uint64
}

// NewLimiter creates a limiter admitting rateBps for the aggregate until
// expiry.
func NewLimiter(agg Aggregate, rateBps float64, burstBytes int, expires time.Time) *Limiter {
	return &Limiter{
		agg:     agg,
		bucket:  diffserv.NewTokenBucket(rateBps, burstBytes),
		expires: expires,
	}
}

// Extend moves the expiry forward (refresh messages).
func (l *Limiter) Extend(until time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if until.After(l.expires) {
		l.expires = until
	}
}

// Hook returns the transit hook to install on the upstream node.
func (l *Limiter) Hook() netem.TransitHook {
	return func(now time.Time, node *netem.Node, pkt []byte) netem.Verdict {
		l.mu.Lock()
		defer l.mu.Unlock()
		if now.After(l.expires) || !l.agg.Matches(pkt) {
			return netem.Deliver
		}
		if l.bucket.Allow(now, len(pkt)) {
			l.Passed++
			return netem.Deliver
		}
		l.Dropped++
		return netem.Verdict{Drop: true}
	}
}

// Controller ties detection to deployment: when the victim observes
// sustained overload it identifies the aggregate and installs limiters on
// the given upstream nodes.
type Controller struct {
	Detector *Detector
	// Upstream nodes that honor pushback requests.
	Upstream []*netem.Node
	// LimitBps is the rate granted to the attack aggregate.
	LimitBps float64
	// Lifetime of installed limiters.
	Lifetime time.Duration

	mu       sync.Mutex
	limiters []*Limiter
}

// MaybePush identifies the dominant aggregate and, if one covers at least
// minFraction of drops, installs limiters upstream. It reports whether
// pushback was deployed.
func (c *Controller) MaybePush(now time.Time, minFraction float64) bool {
	agg, ok := c.Detector.Identify(minFraction)
	if !ok {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, up := range c.Upstream {
		l := NewLimiter(agg, c.LimitBps, 3000, now.Add(c.Lifetime))
		up.AddTransitHook(l.Hook())
		c.limiters = append(c.limiters, l)
	}
	c.Detector.Reset()
	return true
}

// Limiters returns the limiters deployed so far.
func (c *Controller) Limiters() []*Limiter {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Limiter, len(c.limiters))
	copy(out, c.limiters)
	return out
}
