package pushback

import (
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/crypto/keys"
	"netneutral/internal/netem"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

var (
	victim  = netip.MustParseAddr("10.200.0.1")
	goodSrc = netip.MustParseAddr("172.16.1.10")
)

func setupPkt(t testing.TB, src, dst netip.Addr) []byte {
	t.Helper()
	buf := wire.NewSerializeBuffer(96, 0)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoShim, Src: src, Dst: dst},
		&shim.Header{Type: shim.TypeKeySetupRequest, PublicKey: make([]byte, 66)},
	); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func dataPkt(t testing.TB, src, dst netip.Addr) []byte {
	t.Helper()
	buf := wire.NewSerializeBuffer(64, 0)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoShim, Src: src, Dst: dst},
		&shim.Header{Type: shim.TypeData, Nonce: keys.Nonce{1}},
	); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAggregateMatches(t *testing.T) {
	setup := setupPkt(t, goodSrc, victim)
	data := dataPkt(t, goodSrc, victim)

	byDst := Aggregate{Dst: victim}
	if !byDst.Matches(setup) || !byDst.Matches(data) {
		t.Error("dst aggregate should match both")
	}
	if byDst.Matches(setupPkt(t, goodSrc, netip.MustParseAddr("9.9.9.9"))) {
		t.Error("wrong dst matched")
	}
	byType := Aggregate{Dst: victim, ShimType: shim.TypeKeySetupRequest}
	if !byType.Matches(setup) || byType.Matches(data) {
		t.Error("shim-type aggregate selectivity")
	}
	byPrefix := Aggregate{Dst: victim, SrcPrefix: netip.MustParsePrefix("172.16.0.0/16")}
	if !byPrefix.Matches(setup) {
		t.Error("prefix aggregate should match")
	}
	if byPrefix.Matches(setupPkt(t, netip.MustParseAddr("192.0.2.1"), victim)) {
		t.Error("out-of-prefix matched")
	}
	if (Aggregate{Dst: victim}).Matches([]byte{1, 2}) {
		t.Error("malformed packet matched")
	}
}

func TestDetectorIdentifiesFloodSignature(t *testing.T) {
	d := NewDetector(1000)
	// Flood: key-setup packets from one /16, to the victim.
	for i := 0; i < 90; i++ {
		src := netip.AddrFrom4([4]byte{192, 0, byte(i % 4), byte(i)})
		d.Observe(setupPkt(t, src, victim))
	}
	// Background noise.
	for i := 0; i < 10; i++ {
		d.Observe(dataPkt(t, goodSrc, victim))
	}
	agg, ok := d.Identify(0.5)
	if !ok {
		t.Fatal("no aggregate identified")
	}
	if agg.Dst != victim {
		t.Errorf("dst = %v", agg.Dst)
	}
	if agg.ShimType != shim.TypeKeySetupRequest {
		t.Errorf("shim type = %v", agg.ShimType)
	}
	if !agg.SrcPrefix.IsValid() || !agg.SrcPrefix.Contains(netip.MustParseAddr("192.0.1.1")) {
		t.Errorf("src prefix = %v", agg.SrcPrefix)
	}
}

func TestDetectorSpoofedSourcesFallBackToTypeSignature(t *testing.T) {
	d := NewDetector(1000)
	// Spoofed flood: sources scattered over the whole space.
	for i := 0; i < 100; i++ {
		src := netip.AddrFrom4([4]byte{byte(i*7 + 1), byte(i * 13), byte(i * 3), byte(i)})
		d.Observe(setupPkt(t, src, victim))
	}
	agg, ok := d.Identify(0.5)
	if !ok {
		t.Fatal("no aggregate identified")
	}
	if agg.SrcPrefix.IsValid() {
		t.Errorf("spoofed flood should not yield a source prefix, got %v", agg.SrcPrefix)
	}
	if agg.ShimType != shim.TypeKeySetupRequest || agg.Dst != victim {
		t.Error("type+dst signature expected under spoofing")
	}
}

func TestDetectorNoDominantAggregate(t *testing.T) {
	d := NewDetector(100)
	if _, ok := d.Identify(0.5); ok {
		t.Error("empty detector identified something")
	}
	// Drops spread evenly over two destinations: no 80% signature.
	for i := 0; i < 50; i++ {
		d.Observe(dataPkt(t, goodSrc, victim))
		d.Observe(dataPkt(t, goodSrc, netip.MustParseAddr("10.201.0.1")))
	}
	if _, ok := d.Identify(0.8); ok {
		t.Error("no aggregate should cover 80%")
	}
	if d.SampleCount() != 100 {
		t.Errorf("samples = %d", d.SampleCount())
	}
	d.Reset()
	if d.SampleCount() != 0 {
		t.Error("Reset")
	}
}

func TestLimiterRateLimitsAggregate(t *testing.T) {
	now := time.Unix(0, 0)
	agg := Aggregate{Dst: victim, ShimType: shim.TypeKeySetupRequest}
	// ~2 setup packets worth of burst, tiny rate.
	l := NewLimiter(agg, 100, 200, now.Add(time.Minute))
	hook := l.Hook()

	flood := setupPkt(t, goodSrc, victim)
	passed, dropped := 0, 0
	for i := 0; i < 20; i++ {
		if hook(now, nil, flood).Drop {
			dropped++
		} else {
			passed++
		}
	}
	if passed == 0 || dropped == 0 {
		t.Fatalf("passed=%d dropped=%d: limiter should pass burst then drop", passed, dropped)
	}
	if l.Passed != uint64(passed) || l.Dropped != uint64(dropped) {
		t.Error("counters mismatch")
	}
	// Non-matching traffic unaffected even when bucket is empty.
	if hook(now, nil, dataPkt(t, goodSrc, victim)).Drop {
		t.Error("non-matching packet dropped")
	}
	// Expired limiter passes everything.
	if hook(now.Add(2*time.Minute), nil, flood).Drop {
		t.Error("expired limiter still dropping")
	}
}

func TestLimiterExtend(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewLimiter(Aggregate{Dst: victim}, 1, 1, now.Add(time.Second))
	l.Extend(now.Add(time.Hour))
	hook := l.Hook()
	pkt := setupPkt(t, goodSrc, victim)
	hook(now, nil, pkt) // consume burst
	if !hook(now.Add(time.Minute), nil, pkt).Drop {
		t.Error("extended limiter should still be active")
	}
}

// TestPushbackRestoresGoodput runs the full A5 story on a topology:
// an attacker floods key setups through an upstream router; the victim
// detects, pushes back, and legitimate data traffic flows again.
func TestPushbackRestoresGoodput(t *testing.T) {
	start := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	s := netem.NewSimulator(start, 1)
	atk := s.MustAddNode("attacker", "att", netip.MustParseAddr("192.0.2.1"))
	good := s.MustAddNode("good", "att", goodSrc)
	up := s.MustAddNode("upstream", "att", netip.MustParseAddr("172.31.0.1"))
	vic := s.MustAddNode("victim", "cogent", victim)
	s.Connect(atk, up, netem.LinkConfig{Delay: time.Millisecond})
	s.Connect(good, up, netem.LinkConfig{Delay: time.Millisecond})
	// Bottleneck into the victim.
	s.Connect(up, vic, netem.LinkConfig{Delay: time.Millisecond, RateBps: 800_000, QueueLen: 16})
	s.BuildRoutes()

	det := NewDetector(4096)
	received := map[shim.Type]int{}
	vic.SetHandler(func(_ time.Time, pkt []byte) {
		tp, _ := shim.PeekType(pkt[wire.IPv4HeaderLen:])
		received[tp]++
	})
	// Victim observes queue drops at the bottleneck via a trace hook.
	s.Trace(func(ev netem.TraceEvent) {
		if ev.Kind == netem.TraceDropQueue {
			det.Observe(ev.Pkt)
		}
	})

	floodPkt := setupPkt(t, netip.MustParseAddr("192.0.2.1"), victim)
	goodPkt := dataPkt(t, goodSrc, victim)
	// Phase 1 (0-500ms): flood at ~10x bottleneck + trickle of good data.
	for i := 0; i < 500; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {
			for j := 0; j < 10; j++ {
				_ = atk.Send(floodPkt)
			}
		})
	}
	for i := 0; i < 50; i++ {
		s.Schedule(time.Duration(i*10)*time.Millisecond, func() { _ = good.Send(goodPkt) })
	}
	s.RunUntil(start.Add(500 * time.Millisecond))
	floodPhaseGood := received[shim.TypeData]

	// Deploy pushback.
	ctrl := &Controller{
		Detector: det,
		Upstream: []*netem.Node{up},
		LimitBps: 10_000,
		Lifetime: time.Hour,
	}
	if !ctrl.MaybePush(s.Now(), 0.5) {
		t.Fatal("pushback did not identify the flood")
	}
	if len(ctrl.Limiters()) != 1 {
		t.Fatal("limiter not installed")
	}

	// Phase 2 (500ms-1s): same offered load with the limiter in place.
	received[shim.TypeData] = 0
	for i := 500; i < 1000; i++ {
		s.Schedule(s.Now().Add(time.Duration(i-500)*time.Millisecond).Sub(s.Now()), func() {
			for j := 0; j < 10; j++ {
				_ = atk.Send(floodPkt)
			}
		})
	}
	for i := 0; i < 50; i++ {
		s.Schedule(time.Duration(i*10)*time.Millisecond, func() { _ = good.Send(goodPkt) })
	}
	s.RunUntil(start.Add(time.Second))
	cleanPhaseGood := received[shim.TypeData]

	if cleanPhaseGood <= floodPhaseGood {
		t.Errorf("goodput did not improve: flood=%d/50 pushback=%d/50",
			floodPhaseGood, cleanPhaseGood)
	}
	if cleanPhaseGood < 45 {
		t.Errorf("goodput after pushback = %d/50, want near-complete", cleanPhaseGood)
	}
	if ctrl.Limiters()[0].Dropped == 0 {
		t.Error("limiter dropped nothing")
	}
}
