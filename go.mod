module netneutral

go 1.21
