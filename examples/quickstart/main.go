// Quickstart: the smallest end-to-end use of the public API.
//
// An outside client (Ann) performs key setup with a neutralizer, then
// exchanges messages with a protected customer (Google) whose address
// never appears on Ann's side of the border. Everything runs in-process
// with a synchronous toy wire, so the protocol mechanics are easy to
// follow.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"netneutral"
	"netneutral/internal/wire"
)

func main() {
	var (
		anycast  = netip.MustParseAddr("10.200.0.1")
		annAddr  = netip.MustParseAddr("172.16.1.10")
		googAddr = netip.MustParseAddr("10.10.0.5")
		custNet  = netip.MustParsePrefix("10.10.0.0/16")
	)

	// 1. The supportive ISP deploys a neutralizer. Replicas would share
	//    the same schedule — that is the whole anycast trick.
	sched := netneutral.NewKeySchedule(netneutral.MasterKey{42}, time.Now(), time.Hour)
	neut, err := netneutral.NewNeutralizer(netneutral.NeutralizerConfig{
		Schedule:   sched,
		Anycast:    anycast,
		IsCustomer: func(a netip.Addr) bool { return custNet.Contains(a) },
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A toy wire: packets to the anycast address go through the
	//    neutralizer; everything else is delivered to its destination.
	hosts := map[netip.Addr]*netneutral.Host{}
	var route func(pkt []byte) error
	route = func(pkt []byte) error {
		_, dst, err := wire.IPv4Addrs(pkt)
		if err != nil {
			return err
		}
		if dst == anycast {
			outs, err := neut.Process(pkt)
			if err != nil {
				return err
			}
			for _, o := range outs {
				if err := route(o.Pkt); err != nil {
					return err
				}
			}
			return nil
		}
		if h, ok := hosts[dst]; ok {
			h.HandlePacket(time.Now(), pkt)
		}
		return nil
	}

	mkHost := func(addr netip.Addr, name string) *netneutral.Host {
		id, err := netneutral.NewIdentity(0)
		if err != nil {
			log.Fatal(err)
		}
		h, err := netneutral.NewHost(netneutral.HostConfig{
			Addr:      addr,
			Identity:  id,
			Transport: route,
			OnData: func(peer netip.Addr, data []byte) {
				fmt.Printf("[%s] received %q (peer %v)\n", name, data, peer)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		hosts[addr] = h
		return h
	}
	ann := mkHost(annAddr, "ann")
	google := mkHost(googAddr, "google")
	google.SetOnData(func(peer netip.Addr, data []byte) {
		fmt.Printf("[google] received %q — replying\n", data)
		if err := google.Send(peer, []byte("hi ann, love, google")); err != nil {
			log.Fatal(err)
		}
	})

	// 3. Figure 2(a): key setup. Ann ends up with (nonce, Ks) that the
	//    stateless neutralizer can re-derive from any of her packets.
	if err := ann.Setup(anycast); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[ann] conduit established: %v (provisional: %v)\n",
		ann.HasConduit(anycast), ann.ConduitProvisional(anycast))

	// 4. Figure 2(b): data through the neutralizer. The destination
	//    address travels encrypted; the reply returns the key grant.
	if err := ann.Connect(anycast, googAddr, google.Identity()); err != nil {
		log.Fatal(err)
	}
	if err := ann.Send(googAddr, []byte("hello google, love, ann")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[ann] conduit provisional after reply: %v (short-RSA key retired)\n",
		ann.ConduitProvisional(anycast))

	s := neut.Stats()
	fmt.Printf("[neutralizer] setups=%d data=%d returns=%d grants=%d (per-flow state: %d)\n",
		s.KeySetups.Load(), s.DataForwarded.Load(), s.ReturnForwarded.Load(),
		s.GrantsStamped.Load(), neut.DynAddrCount())
}
