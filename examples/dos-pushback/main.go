// DoS pushback: a key-setup flood against the neutralizer (§3.6) and the
// aggregate-based pushback that restores legitimate goodput.
//
// An attacker blasts key-setup packets at ~10x the bottleneck capacity.
// The victim samples its queue drops, identifies the congestion signature
// ("key-setup packets to the service address" — robust to source
// spoofing), and asks the upstream router to rate-limit the aggregate.
//
//	go run ./examples/dos-pushback
//	go run ./examples/dos-pushback -floodrate 20 -limit 5000
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"time"

	"netneutral/internal/crypto/keys"
	"netneutral/internal/netem"
	"netneutral/internal/pushback"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

var (
	start    = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	atkAddr  = netip.MustParseAddr("192.0.2.1")
	goodAddr = netip.MustParseAddr("172.16.1.10")
	upAddr   = netip.MustParseAddr("172.16.0.1")
	victim   = netip.MustParseAddr("10.200.0.1")
)

func main() {
	floodRate := flag.Int("floodrate", 10, "attack setups per millisecond")
	limit := flag.Float64("limit", 10_000, "pushback rate limit for the aggregate (bps)")
	flag.Parse()

	sim := netem.NewSimulator(start, 3)
	atk := sim.MustAddNode("attacker", "att", atkAddr)
	good := sim.MustAddNode("good-user", "att", goodAddr)
	up := sim.MustAddNode("upstream", "att", upAddr)
	vic := sim.MustAddNode("neutralizer", "cogent", victim)
	sim.Connect(atk, up, netem.LinkConfig{Delay: time.Millisecond})
	sim.Connect(good, up, netem.LinkConfig{Delay: time.Millisecond})
	sim.Connect(up, vic, netem.LinkConfig{Delay: time.Millisecond, RateBps: 800_000, QueueLen: 16})
	sim.BuildRoutes()

	det := pushback.NewDetector(8192)
	received := map[shim.Type]int{}
	vic.SetHandler(func(_ time.Time, pkt []byte) {
		if t, ok := shim.PeekType(pkt[wire.IPv4HeaderLen:]); ok {
			received[t]++
		}
	})
	sim.Trace(func(ev netem.TraceEvent) {
		if ev.Kind == netem.TraceDropQueue {
			det.Observe(ev.Pkt)
		}
	})

	flood := mustShim(atkAddr, victim, &shim.Header{
		Type: shim.TypeKeySetupRequest, PublicKey: make([]byte, 66)})
	goodPkt := mustShim(goodAddr, victim, &shim.Header{
		Type: shim.TypeData, Nonce: keys.Nonce{1}})

	inject := func() {
		for i := 0; i < 500; i++ {
			sim.Schedule(time.Duration(i)*time.Millisecond, func() {
				for j := 0; j < *floodRate; j++ {
					_ = atk.Send(flood)
				}
			})
		}
		for i := 0; i < 50; i++ {
			sim.Schedule(time.Duration(i*10)*time.Millisecond, func() { _ = good.Send(goodPkt) })
		}
	}

	fmt.Printf("phase 1: flood at %d setups/ms into an 800 kbps bottleneck\n", *floodRate)
	inject()
	sim.RunFor(500 * time.Millisecond)
	fmt.Printf("  legitimate data delivered: %d/50\n", received[shim.TypeData])
	fmt.Printf("  drop samples collected at victim: %d\n\n", det.SampleCount())

	ctrl := &pushback.Controller{Detector: det, Upstream: []*netem.Node{up},
		LimitBps: *limit, Lifetime: time.Hour}
	if !ctrl.MaybePush(sim.Now(), 0.5) {
		log.Fatal("pushback found no dominant aggregate")
	}
	fmt.Println("phase 2: pushback deployed upstream (signature: key-setups to the service)")
	received[shim.TypeData] = 0
	inject()
	sim.RunFor(500 * time.Millisecond)
	fmt.Printf("  legitimate data delivered: %d/50\n", received[shim.TypeData])
	var drops uint64
	for _, l := range ctrl.Limiters() {
		drops += l.Dropped
	}
	fmt.Printf("  flood packets shed upstream: %d\n", drops)
}

func mustShim(src, dst netip.Addr, sh *shim.Header) []byte {
	buf := wire.NewSerializeBuffer(96, 0)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoShim, Src: src, Dst: dst},
		sh,
	); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}
