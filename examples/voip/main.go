// VoIP discrimination: the paper's motivating Vonage story, quantified.
//
// A broadband ISP degrades traffic addressed to a competitor's VoIP
// server while its own service rides clean. Without the neutralizer the
// competitor's MOS collapses; with it, the classifier cannot find the
// flow and quality is restored.
//
//	go run ./examples/voip                 # defaults: 12% loss, 150ms delay
//	go run ./examples/voip -loss 0.3 -delay 300ms
package main

import (
	"flag"
	"fmt"
	"log"
	mathrand "math/rand"
	"net/netip"
	"time"

	"netneutral"
	"netneutral/internal/endhost"
	"netneutral/internal/isp"
	"netneutral/internal/measure"
	"netneutral/internal/netem"
	"netneutral/internal/wire"
)

var (
	start    = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	userAddr = netip.MustParseAddr("172.16.1.10")
	attAddr  = netip.MustParseAddr("172.16.0.1")
	anycast  = netip.MustParseAddr("10.200.0.1")
	vonage   = netip.MustParseAddr("10.10.0.7")
	custNet  = netip.MustParsePrefix("10.10.0.0/16")
)

func main() {
	loss := flag.Float64("loss", 0.12, "targeted drop probability")
	delay := flag.Duration("delay", 150*time.Millisecond, "targeted extra delay")
	frames := flag.Int("frames", 150, "G.711 frames per call (20ms each)")
	flag.Parse()

	clean := runCall(*frames, 0, 0, false)
	degraded := runCall(*frames, *loss, *delay, false)
	cured := runCall(*frames, *loss, *delay, true)

	fmt.Printf("G.711 call, %d frames of 160B every 20ms (64 kbps):\n\n", *frames)
	fmt.Printf("  %-42s MOS %.2f\n", "ISP's own VoIP (undisturbed path):", clean)
	fmt.Printf("  %-42s MOS %.2f\n",
		fmt.Sprintf("competitor, targeted (%.0f%% loss, +%v):", *loss*100, *delay), degraded)
	fmt.Printf("  %-42s MOS %.2f\n", "competitor, neutralized (same rule):", cured)
	fmt.Println("\nMOS scale: 4.3+ excellent, 4.0 good, 3.6 fair, <3.1 users abandon the service.")
}

// runCall builds the Figure-1 world, streams a one-way call from the user
// to the competitor's VoIP server, and returns the E-model MOS.
func runCall(frames int, loss float64, delay time.Duration, neutralized bool) float64 {
	sim := netem.NewSimulator(start, 4)
	user := sim.MustAddNode("user", "att", userAddr)
	att := sim.MustAddNode("att-core", "att", attAddr)
	border := sim.MustAddNode("border", "cogent")
	server := sim.MustAddNode("vonage", "cogent", vonage)
	sim.Connect(user, att, netem.LinkConfig{Delay: 2 * time.Millisecond})
	sim.Connect(att, border, netem.LinkConfig{Delay: 8 * time.Millisecond})
	sim.Connect(border, server, netem.LinkConfig{Delay: 2 * time.Millisecond})
	sim.AddAnycast(anycast, border)
	sim.BuildRoutes()

	if loss > 0 || delay > 0 {
		policy := isp.NewPolicy(sim.Rand(), isp.Rule{
			Name:   "degrade-competitor",
			Match:  isp.MatchDstAddr(vonage),
			Action: isp.Action{DropProb: loss, Delay: delay},
		})
		att.AddTransitHook(policy.Hook())
	}

	neut, err := netneutral.NewNeutralizer(netneutral.NeutralizerConfig{
		Schedule:   netneutral.NewKeySchedule(netneutral.MasterKey{7}, start, time.Hour),
		Anycast:    anycast,
		IsCustomer: func(a netip.Addr) bool { return custNet.Contains(a) },
		Clock:      sim.Now,
		Rand:       mathrand.New(mathrand.NewSource(5)),
	})
	if err != nil {
		log.Fatal(err)
	}
	border.SetHandler(func(_ time.Time, pkt []byte) {
		outs, err := neut.Process(pkt)
		if err != nil {
			return
		}
		for _, o := range outs {
			_ = border.Send(o.Pkt)
		}
	})

	var lost measure.LossCounter
	var delays measure.Histogram
	frameAt := func(seq uint64) time.Time {
		return start.Add(2*time.Second + time.Duration(seq)*20*time.Millisecond)
	}
	record := func(now time.Time, payload []byte) {
		if len(payload) < 8 {
			return
		}
		var seq uint64
		for i := 0; i < 8; i++ {
			seq = seq<<8 | uint64(payload[i])
		}
		lost.Received++
		delays.Add(now.Sub(frameAt(seq)))
	}
	sendFrame := func(seq uint64, send func(payload []byte)) {
		sim.ScheduleAt(frameAt(seq), func() {
			lost.Sent++
			payload := make([]byte, 160)
			for i := 0; i < 8; i++ {
				payload[i] = byte(seq >> (8 * (7 - i)))
			}
			send(payload)
		})
	}

	if !neutralized {
		server.SetHandler(func(now time.Time, pkt []byte) {
			p := wire.ParsePacket(pkt, wire.LayerTypeIPv4)
			if p.ErrorLayer() == nil {
				record(now, p.ApplicationPayload())
			}
		})
		for i := 0; i < frames; i++ {
			sendFrame(uint64(i), func(payload []byte) {
				buf := wire.NewSerializeBuffer(28, len(payload))
				buf.PushPayload(payload)
				_ = wire.SerializeLayers(buf,
					&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: userAddr, Dst: vonage},
					&wire.UDP{SrcPort: 7078, DstPort: 7078},
				)
				_ = user.Send(buf.Bytes())
			})
		}
		sim.Run()
	} else {
		mk := func(node *netem.Node, seed int64) *endhost.Host {
			id, err := netneutral.NewIdentity(0)
			if err != nil {
				log.Fatal(err)
			}
			h, err := endhost.NewHost(endhost.Config{
				Addr:      node.Addr(),
				Transport: func(pkt []byte) error { return node.Send(pkt) },
				Identity:  id,
				Clock:     sim.Now,
				Rand:      mathrand.New(mathrand.NewSource(seed)),
			})
			if err != nil {
				log.Fatal(err)
			}
			node.SetHandler(h.HandlePacket)
			return h
		}
		serverHost := mk(server, 31)
		userHost := mk(user, 32)
		serverHost.SetOnData(func(_ netip.Addr, data []byte) { record(sim.Now(), data) })
		if err := userHost.Setup(anycast); err != nil {
			log.Fatal(err)
		}
		sim.RunFor(time.Second)
		if err := userHost.Connect(anycast, vonage, serverHost.Identity()); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < frames; i++ {
			sendFrame(uint64(i), func(payload []byte) { _ = userHost.Send(vonage, payload) })
		}
		sim.Run()
	}
	return measure.MOS(delays.Mean(), lost.Loss())
}
