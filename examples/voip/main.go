// VoIP discrimination: the paper's motivating Vonage story, quantified
// on the fan-out substrate with the app-shaped traffic model.
//
// A broadband ISP degrades traffic addressed to a competitor's VoIP
// server while its own service rides clean. Without the neutralizer the
// competitor's MOS collapses; with it, the classifier cannot find the
// flow and quality is restored. The call is a trafficgen.AppSource VoIP
// flow — the same jittered G.711 shape the E7 arms-race experiment
// fingerprints — crossing a netem.BuildFanout topology: user (outside)
// → discriminatory transit → supportive border (neutralizer) → server.
//
//	go run ./examples/voip                 # defaults: 12% loss, 150ms delay
//	go run ./examples/voip -loss 0.3 -delay 300ms -duration 5s
package main

import (
	"flag"
	"fmt"
	"log"
	mathrand "math/rand"
	"net/netip"
	"time"

	"netneutral"
	"netneutral/internal/e2e"
	"netneutral/internal/endhost"
	"netneutral/internal/isp"
	"netneutral/internal/measure"
	"netneutral/internal/netem"
	"netneutral/internal/trafficgen"
	"netneutral/internal/wire"
)

var start = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)

func main() {
	loss := flag.Float64("loss", 0.12, "targeted drop probability")
	delay := flag.Duration("delay", 150*time.Millisecond, "targeted extra delay")
	duration := flag.Duration("duration", 3*time.Second, "call length (G.711 frames every ~20ms)")
	seed := flag.Int64("seed", 4, "seed for jitter, policy and identities")
	flag.Parse()

	clean := runCall(*duration, 0, 0, false, *seed)
	degraded := runCall(*duration, *loss, *delay, false, *seed)
	cured := runCall(*duration, *loss, *delay, true, *seed)

	fmt.Printf("G.711 call, 160B frames every ~20ms (64 kbps) for %v:\n\n", *duration)
	fmt.Printf("  %-42s MOS %.2f\n", "ISP's own VoIP (undisturbed path):", clean)
	fmt.Printf("  %-42s MOS %.2f\n",
		fmt.Sprintf("competitor, targeted (%.0f%% loss, +%v):", *loss*100, *delay), degraded)
	fmt.Printf("  %-42s MOS %.2f\n", "competitor, neutralized (same rule):", cured)
	fmt.Println("\nMOS scale: 4.3+ excellent, 4.0 good, 3.6 fair, <3.1 users abandon the service.")
}

// runCall stamps out the fan-out world, streams one app-shaped call
// from the outside user to the competitor's server, and returns the
// E-model MOS.
func runCall(duration time.Duration, loss float64, delay time.Duration, neutralized bool, seed int64) float64 {
	sim := netem.NewSimulator(start, seed)
	f, err := netem.BuildFanout(sim, netem.FanoutSpec{Hosts: 1})
	if err != nil {
		log.Fatal(err)
	}
	user, server := f.Outside[0], f.Hosts[0]
	vonage := f.HostAddr(0)

	// The discriminatory transit targets the competitor's server.
	if loss > 0 || delay > 0 {
		policy := isp.NewPolicy(sim.Rand(), isp.Rule{
			Name:   "degrade-competitor",
			Match:  isp.MatchDstAddr(vonage),
			Action: isp.Action{DropProb: loss, Delay: delay},
		})
		f.Transit.AddTransitHook(policy.Hook())
	}

	neut, err := netneutral.NewNeutralizer(netneutral.NeutralizerConfig{
		Schedule:   netneutral.NewKeySchedule(netneutral.MasterKey{7}, start, time.Hour),
		Anycast:    f.Spec.Anycast,
		IsCustomer: f.CustomerNet.Contains,
		Clock:      sim.Now,
		Rand:       mathrand.New(mathrand.NewSource(seed + 1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	f.Border.SetHandler(func(_ time.Time, pkt []byte) {
		outs, err := neut.Process(pkt)
		if err != nil {
			return
		}
		for _, o := range outs {
			_ = f.Border.Send(o.Pkt)
		}
	})

	// Frame accounting: the app source jitters emissions, so delays are
	// measured against each frame's recorded send time.
	var lost measure.LossCounter
	var delays measure.Histogram
	var sentAt []time.Time
	record := func(now time.Time, payload []byte) {
		seq := trafficgen.SeqOf(payload)
		if int(seq) >= len(sentAt) {
			return
		}
		lost.Received++
		delays.Add(now.Sub(sentAt[seq]))
	}
	mkFrame := func(seq uint64, size int) []byte {
		payload := make([]byte, size)
		for i := 0; i < 8; i++ {
			payload[i] = byte(seq >> (8 * (7 - i)))
		}
		lost.Sent++
		sentAt = append(sentAt, sim.Now())
		return payload
	}
	call := trafficgen.AppSource{App: trafficgen.AppVoIP, Rng: mathrand.New(mathrand.NewSource(seed + 2))}

	if !neutralized {
		server.SetHandler(func(now time.Time, pkt []byte) {
			p := wire.ParsePacket(pkt, wire.LayerTypeIPv4)
			if p.ErrorLayer() == nil {
				record(now, p.ApplicationPayload())
			}
		})
		call.Run(sim, duration, func(seq uint64, size int) {
			payload := mkFrame(seq, size)
			buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
			buf.PushPayload(payload)
			_ = wire.SerializeLayers(buf,
				&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: user.Addr(), Dst: vonage},
				&wire.UDP{SrcPort: 7078, DstPort: trafficgen.AppVoIP.Port()},
			)
			_ = user.Send(buf.Bytes())
		})
		sim.Run()
	} else {
		mk := func(node *netem.Node, s int64) *endhost.Host {
			id, err := e2e.NewIdentity(mathrand.New(mathrand.NewSource(s)), 0)
			if err != nil {
				log.Fatal(err)
			}
			h, err := endhost.NewHost(endhost.Config{
				Addr:      node.Addr(),
				Transport: func(pkt []byte) error { return node.Send(pkt) },
				Identity:  id,
				Clock:     sim.Now,
				Rand:      mathrand.New(mathrand.NewSource(s)),
			})
			if err != nil {
				log.Fatal(err)
			}
			node.SetHandler(h.HandlePacket)
			return h
		}
		serverHost := mk(server, seed+31)
		userHost := mk(user, seed+32)
		serverHost.SetOnData(func(_ netip.Addr, data []byte) { record(sim.Now(), data) })
		if err := userHost.Setup(f.Spec.Anycast); err != nil {
			log.Fatal(err)
		}
		sim.RunFor(time.Second)
		if err := userHost.Connect(f.Spec.Anycast, vonage, serverHost.Identity()); err != nil {
			log.Fatal(err)
		}
		call.Run(sim, duration, func(seq uint64, size int) {
			_ = userHost.Send(vonage, mkFrame(seq, size))
		})
		sim.Run()
	}
	return measure.MOS(delays.Mean(), lost.Loss())
}
