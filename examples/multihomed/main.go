// Multi-homed site (§3.5): a destination publishes one neutralizer
// address per provider; sources decide which to use. This example races
// four selection strategies against a fast and a slow provider, then
// kills the fast provider mid-run to show trial-and-error recovery.
//
//	go run ./examples/multihomed
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"netneutral/internal/multihome"
	"netneutral/internal/netem"
	"netneutral/internal/wire"
)

var (
	start   = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	srcAddr = netip.MustParseAddr("172.16.1.10")
	fast    = netip.MustParseAddr("10.200.0.1")
	slow    = netip.MustParseAddr("10.201.0.1")
)

func main() {
	fmt.Println("dual-homed site: provider A at 5ms, provider B at 40ms; 60 probes each")
	fmt.Println()
	for _, tc := range []struct {
		strat multihome.Strategy
		fail  int
	}{
		{multihome.Static{}, 0},
		{&multihome.RoundRobin{}, 0},
		{multihome.NewWeighted(5), 0},
		{multihome.NewTrialAndError(), 20},
	} {
		uses, ok, mean := run(tc.strat, tc.fail)
		note := ""
		if tc.fail > 0 {
			note = fmt.Sprintf("  (provider A killed after probe %d)", tc.fail)
		}
		fmt.Printf("%-18s A=%-3d B=%-3d answered=%d/60  mean RTT %v%s\n",
			tc.strat.Name()+":", uses[fast], uses[slow], ok, mean.Round(time.Millisecond), note)
	}
	fmt.Println("\nthe paper's remedy: sources borrow IPv6-style address selection; trial-and-error always finds a working path")
}

func run(strat multihome.Strategy, failAfter int) (map[netip.Addr]int, int, time.Duration) {
	sim := netem.NewSimulator(start, 6)
	src := sim.MustAddNode("src", "att", srcAddr)
	pa := sim.MustAddNode("provider-a", "p1", fast)
	pb := sim.MustAddNode("provider-b", "p2", slow)
	sim.Connect(src, pa, netem.LinkConfig{Delay: 5 * time.Millisecond})
	sim.Connect(src, pb, netem.LinkConfig{Delay: 40 * time.Millisecond})
	sim.BuildRoutes()
	echo := func(node *netem.Node) netem.Handler {
		return func(_ time.Time, pkt []byte) {
			s, d, err := wire.IPv4Addrs(pkt)
			if err != nil {
				return
			}
			buf := wire.NewSerializeBuffer(28, 4)
			buf.PushPayload([]byte("pong"))
			_ = wire.SerializeLayers(buf,
				&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: d, Dst: s},
				&wire.UDP{SrcPort: 7, DstPort: 7},
			)
			_ = node.Send(buf.Bytes())
		}
	}
	pa.SetHandler(echo(pa))
	pb.SetHandler(echo(pb))

	sel, err := multihome.NewSelector([]netip.Addr{fast, slow}, strat)
	if err != nil {
		log.Fatal(err)
	}
	down := false
	pa.AddTransitHook(func(time.Time, *netem.Node, []byte) netem.Verdict {
		if down {
			return netem.Verdict{Drop: true}
		}
		return netem.Deliver
	})

	ok := 0
	var sum time.Duration
	const probes = 60
	var probe func(i int)
	probe = func(i int) {
		if i >= probes {
			return
		}
		if failAfter > 0 && i == failAfter {
			down = true
		}
		target := sel.Pick()
		sent := sim.Now()
		answered := false
		src.SetHandler(func(now time.Time, _ []byte) {
			if answered {
				return
			}
			answered = true
			rtt := now.Sub(sent)
			sel.Feedback(target, true, rtt)
			ok++
			sum += rtt
			sim.Schedule(time.Millisecond, func() { probe(i + 1) })
		})
		buf := wire.NewSerializeBuffer(28, 4)
		buf.PushPayload([]byte("ping"))
		_ = wire.SerializeLayers(buf,
			&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: srcAddr, Dst: target},
			&wire.UDP{SrcPort: 7, DstPort: 7},
		)
		_ = src.Send(buf.Bytes())
		sim.Schedule(200*time.Millisecond, func() {
			if !answered {
				answered = true
				sel.Feedback(target, false, 0)
				sim.Schedule(time.Millisecond, func() { probe(i + 1) })
			}
		})
	}
	probe(0)
	sim.Run()
	mean := time.Duration(0)
	if ok > 0 {
		mean = sum / time.Duration(ok)
	}
	return sel.Uses(), ok, mean
}
