// DNS bootstrap (§3.1): a source must learn a destination's address,
// neutralizer addresses and public key before connecting — and the
// discriminatory ISP would love to delay exactly those lookups.
//
// The ISP installs a DPI rule delaying any packet that names the
// non-paying site. Plaintext queries eat the delay; encrypted queries to
// a third-party resolver are indistinguishable and fast.
//
//	go run ./examples/dns-bootstrap
package main

import (
	"fmt"
	"log"
	mathrand "math/rand"
	"net/netip"
	"time"

	"netneutral"
	"netneutral/internal/dnssim"
	"netneutral/internal/isp"
	"netneutral/internal/netem"
)

var (
	start    = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	client   = netip.MustParseAddr("172.16.1.10")
	attCore  = netip.MustParseAddr("172.16.0.1")
	resolver = netip.MustParseAddr("10.50.0.53")
	google   = netip.MustParseAddr("10.10.0.5")
	anycast  = netip.MustParseAddr("10.200.0.1")
)

func main() {
	sim := netem.NewSimulator(start, 2)
	cl := sim.MustAddNode("client", "att", client)
	evil := sim.MustAddNode("att-core", "att", attCore)
	res := sim.MustAddNode("resolver", "cogent", resolver)
	sim.Connect(cl, evil, netem.LinkConfig{Delay: 2 * time.Millisecond})
	sim.Connect(evil, res, netem.LinkConfig{Delay: 8 * time.Millisecond})
	sim.BuildRoutes()

	id, err := netneutral.NewIdentity(0)
	if err != nil {
		log.Fatal(err)
	}
	r := dnssim.NewResolver(res, id)
	r.AddRecord(dnssim.Record{
		Name: "www.google.com", Addr: google,
		Neutralizers: []netip.Addr{anycast},
		PublicKey:    id.Public(), // stand-in key for the demo
	})
	r.AddRecord(dnssim.Record{Name: "paying.example", Addr: netip.MustParseAddr("10.10.0.9")})

	policy := isp.NewPolicy(nil, isp.Rule{
		Name:   "delay-google-dns",
		Match:  isp.MatchPayloadContains([]byte("www.google.com")),
		Action: isp.Action{Delay: 500 * time.Millisecond},
	})
	evil.AddTransitHook(policy.Hook())

	c := dnssim.NewClient(cl, mathrand.New(mathrand.NewSource(1)))
	lookup := func(kind, name string, enc bool) {
		base := sim.Now()
		var rec dnssim.Record
		var lookupErr error
		done := false
		cb := func(got dnssim.Record, err error) { rec, lookupErr, done = got, err, true }
		if enc {
			err = c.LookupEncrypted(resolver, r.Public(), name, cb)
		} else {
			err = c.LookupPlain(resolver, name, cb)
		}
		if err != nil {
			log.Fatal(err)
		}
		sim.Run()
		if !done || lookupErr != nil {
			log.Fatalf("%s lookup of %s failed: %v", kind, name, lookupErr)
		}
		fmt.Printf("%-32s %-18s -> %v, %d neutralizer(s), took %v\n",
			kind, name, rec.Addr, len(rec.Neutralizers), sim.Now().Sub(base))
	}

	fmt.Println("ISP rule: +500ms for any packet naming www.google.com")
	fmt.Println()
	lookup("plaintext (targeted)", "www.google.com", false)
	lookup("plaintext (paying site)", "paying.example", false)
	lookup("encrypted (targeted)", "www.google.com", true)
	fmt.Printf("\nrule hits: %d — only the plaintext query was classifiable\n", policy.Hits("delay-google-dns"))
}
